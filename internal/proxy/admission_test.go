package proxy_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"webcachesim/internal/metrics"
	"webcachesim/internal/policy"
	"webcachesim/internal/proxy"
)

// freeSpaceOnly admits only into free space, making admission rejections
// deterministic regardless of body sizes.
type freeSpaceOnly struct {
	counts policy.AdmissionCounts
}

func (f *freeSpaceOnly) Name() string      { return "free-space-only" }
func (f *freeSpaceOnly) Touch(*policy.Doc) { f.counts.Touches++ }
func (f *freeSpaceOnly) Admit(candidate, victim *policy.Doc) bool {
	if victim == nil {
		return true
	}
	f.counts.Rejected++
	return false
}
func (f *freeSpaceOnly) Inserted(*policy.Doc)           { f.counts.Admitted++ }
func (f *freeSpaceOnly) Evicted(*policy.Doc)            {}
func (f *freeSpaceOnly) Counts() policy.AdmissionCounts { return f.counts }

func freeSpaceOnlyFactory() policy.AdmitterFactory {
	return policy.AdmitterFactory{
		Name: "free-space-only",
		New:  func(int64) policy.Admitter { return &freeSpaceOnly{} },
	}
}

// newAdmissionProxy builds a one-shard reverse proxy whose cache holds
// exactly one test body, so the second distinct URL must contest.
func newAdmissionProxy(t *testing.T) (*proxy.Server, *metrics.Registry) {
	t.Helper()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/gif")
		fmt.Fprintf(w, "body-of-%s", r.URL.Path)
	}))
	t.Cleanup(origin.Close)
	u, err := url.Parse(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv, err := proxy.New(proxy.Config{
		Capacity:  20, // one "body-of-/x.gif" body (14 bytes), not two
		Shards:    1,
		Origin:    u,
		Metrics:   reg,
		Admission: freeSpaceOnlyFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, reg
}

func TestProxyAdmissionRejectHeaderAndCounters(t *testing.T) {
	srv, reg := newAdmissionProxy(t)

	first := get(t, srv, "/a.gif")
	if h := first.Header().Get("X-Admission"); h != "" {
		t.Errorf("first miss stored into free space; X-Admission = %q, want unset", h)
	}

	rejected := get(t, srv, "/b.gif")
	if rejected.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("X-Cache = %q, want MISS", rejected.Header().Get("X-Cache"))
	}
	if h := rejected.Header().Get("X-Admission"); h != "reject" {
		t.Errorf("X-Admission = %q, want reject", h)
	}

	// The rejected document was never stored: a repeat is a fresh miss
	// and a fresh rejection, while the protected resident keeps hitting.
	again := get(t, srv, "/b.gif")
	if h := again.Header().Get("X-Admission"); h != "reject" {
		t.Errorf("repeat X-Admission = %q, want reject", h)
	}
	if hit := get(t, srv, "/a.gif"); hit.Header().Get("X-Cache") != "HIT" {
		t.Errorf("resident entry should still hit, got X-Cache = %q", hit.Header().Get("X-Cache"))
	}

	if got := srv.Stats().AdmissionRejects; got != 2 {
		t.Errorf("Stats().AdmissionRejects = %d, want 2", got)
	}
	text := exposition(t, reg)
	for _, want := range []string{
		"wcproxy_admission_rejected_total 2",
		"wcproxy_admission_admitted_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

// TestProxyWithoutAdmissionExposesNoAdmissionMetrics keeps the default
// /metrics surface stable for existing scrapers.
func TestProxyWithoutAdmissionExposesNoAdmissionMetrics(t *testing.T) {
	srv, reg, _ := newInstrumented(t, 1<<20)
	get(t, srv, "/a.gif")
	if rr := get(t, srv, "/a.gif"); rr.Header().Get("X-Admission") != "" {
		t.Errorf("X-Admission must never be set without a filter")
	}
	if text := exposition(t, reg); strings.Contains(text, "wcproxy_admission") {
		t.Errorf("admission metrics registered without a filter:\n%s", text)
	}
	if got := srv.Stats().AdmissionRejects; got != 0 {
		t.Errorf("Stats().AdmissionRejects = %d without a filter, want 0", got)
	}
}
