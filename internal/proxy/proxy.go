// Package proxy implements a working HTTP caching proxy on top of the
// replacement-policy engine — the system the simulator models. It serves
// both as a live demonstration of the policies and as a trace source: the
// proxy emits Squid-native access logs that feed straight back into the
// trace parser, characterization, and simulator.
//
// The proxy applies the same cacheability rules the paper's preprocessing
// assumes (GET only, the Section 2 status-code whitelist, the CGI/query
// heuristics) plus Cache-Control: no-store. Consistency protocols
// (expiration, revalidation) are out of scope, as in the paper: the proxy
// studies replacement only.
package proxy

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"webcachesim/internal/doctype"
	"webcachesim/internal/metrics"
	"webcachesim/internal/policy"
	"webcachesim/internal/trace"
)

// DefaultMaxObjectBytes bounds the size of a single cached response body.
const DefaultMaxObjectBytes = 8 << 20

// Config parameterizes a proxy server.
type Config struct {
	// Capacity is the cache size in bytes; it must be positive.
	Capacity int64
	// Policy builds the replacement scheme; LRU when unset.
	Policy policy.Factory
	// Origin, when set, turns the proxy into a reverse proxy: every
	// request is rewritten to the origin. When nil, the proxy acts as a
	// forward proxy and requires absolute-form request URLs.
	Origin *url.URL
	// Parent, when set, routes upstream fetches through another HTTP
	// proxy — Squid's cache_peer parent relationship. Chaining two
	// Servers this way forms a live two-level cache hierarchy.
	Parent *url.URL
	// Transport performs upstream fetches; http.DefaultTransport when
	// nil. Ignored when Parent is set.
	Transport http.RoundTripper
	// AccessLog, when set, receives Squid-native log lines.
	AccessLog io.Writer
	// MaxObjectBytes bounds a single cached object
	// (DefaultMaxObjectBytes when 0).
	MaxObjectBytes int64
	// Now supplies timestamps (time.Now when nil); injectable for tests.
	Now func() time.Time
	// Metrics, when set, receives the proxy's exported instrumentation
	// (request/hit/eviction counters, origin-fetch latency and object-size
	// histograms, occupancy gauges — see docs/METRICS.md). When nil the
	// proxy still keeps its counters on a private registry, so
	// instrumentation cost is identical either way: a few atomic adds per
	// request.
	Metrics *metrics.Registry
}

// Stats is a snapshot of the proxy's accounting, overall and per class.
type Stats struct {
	// Requests and Hits count all handled GET requests and cache hits.
	Requests int64 `json:"requests"`
	Hits     int64 `json:"hits"`
	// ReqBytes and HitBytes count body bytes requested and served from
	// cache.
	ReqBytes int64 `json:"reqBytes"`
	HitBytes int64 `json:"hitBytes"`
	// Evictions counts replacement victims.
	Evictions int64 `json:"evictions"`
	// ByClass breaks requests and hits down by document class.
	ByClass [doctype.NumClasses + 1]struct {
		Requests int64 `json:"requests"`
		Hits     int64 `json:"hits"`
	} `json:"byClass"`
}

// HitRate returns Hits/Requests, or 0 without traffic.
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// ByteHitRate returns HitBytes/ReqBytes, or 0 without traffic.
func (s Stats) ByteHitRate() float64 {
	if s.ReqBytes == 0 {
		return 0
	}
	return float64(s.HitBytes) / float64(s.ReqBytes)
}

// entry is one cached response.
type entry struct {
	doc         *policy.Doc
	body        []byte
	contentType string
	status      int
}

// Server is the caching proxy; it implements http.Handler.
type Server struct {
	cfg       Config
	transport http.RoundTripper
	now       func() time.Time

	mu      sync.Mutex
	pol     policy.Policy
	entries map[string]*entry
	ids     *trace.Interner // URL -> dense doc ID (the Doc.ID keying contract)
	used    int64
	stats   Stats
	logw    *trace.SquidWriter
	metrics *serverMetrics
}

var _ http.Handler = (*Server)(nil)

// New creates a proxy server.
func New(cfg Config) (*Server, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("proxy: capacity %d must be positive", cfg.Capacity)
	}
	if cfg.Policy.New == nil {
		cfg.Policy = policy.MustFactory(policy.Spec{Scheme: "lru"})
	}
	if cfg.MaxObjectBytes <= 0 {
		cfg.MaxObjectBytes = DefaultMaxObjectBytes
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		transport: cfg.Transport,
		now:       cfg.Now,
		pol:       cfg.Policy.New(),
		entries:   make(map[string]*entry, 1024),
		ids:       trace.NewInterner(),
		metrics:   newServerMetrics(reg),
	}
	s.registerGauges(reg)
	if cfg.Parent != nil {
		parent := cfg.Parent
		s.transport = &http.Transport{
			Proxy: func(*http.Request) (*url.URL, error) { return parent, nil },
		}
	}
	if s.transport == nil {
		s.transport = http.DefaultTransport
	}
	if s.now == nil {
		s.now = time.Now
	}
	if cfg.AccessLog != nil {
		s.logw = trace.NewSquidWriter(cfg.AccessLog)
	}
	return s, nil
}

// Stats returns a snapshot of the proxy's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Used returns the current cache occupancy in bytes.
func (s *Server) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Len returns the number of cached objects.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "proxy caches GET only", http.StatusMethodNotAllowed)
		return
	}
	target, err := s.targetURL(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := target.String()

	if e := s.lookup(key); e != nil {
		s.serve(w, r, key, e, true)
		return
	}

	e, err := s.fetch(target, r)
	if err != nil {
		http.Error(w, fmt.Sprintf("upstream: %v", err), http.StatusBadGateway)
		return
	}
	s.serve(w, r, key, e, false)
}

// targetURL resolves the upstream URL for a request.
func (s *Server) targetURL(r *http.Request) (*url.URL, error) {
	if s.cfg.Origin != nil {
		u := *s.cfg.Origin
		u.Path = r.URL.Path
		u.RawQuery = r.URL.RawQuery
		return &u, nil
	}
	if r.URL.IsAbs() {
		return r.URL, nil
	}
	if r.Host != "" {
		u := *r.URL
		u.Scheme = "http"
		u.Host = r.Host
		return &u, nil
	}
	return nil, errors.New("proxy: relative request without Host")
}

// lookup returns the cached entry for key and records the policy hit, or
// nil on a miss.
func (s *Server) lookup(key string) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil
	}
	s.pol.Hit(e.doc)
	return e
}

// fetch retrieves the document from upstream and caches it when the
// response is cacheable under the paper's rules.
func (s *Server) fetch(target *url.URL, orig *http.Request) (*entry, error) {
	req, err := http.NewRequestWithContext(orig.Context(), http.MethodGet, target.String(), nil)
	if err != nil {
		return nil, err
	}
	req.Header = orig.Header.Clone()
	fetchStart := s.now()
	resp, err := s.transport.RoundTrip(req)
	if err != nil {
		s.metrics.originErrors.Inc()
		return nil, err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	body, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxObjectBytes+1))
	if err != nil {
		s.metrics.originErrors.Inc()
		return nil, err
	}
	s.metrics.originSeconds.Observe(s.now().Sub(fetchStart).Seconds())
	s.metrics.originBytes.Add(int64(len(body)))
	s.metrics.objectBytes.Observe(float64(len(body)))
	e := &entry{
		doc: &policy.Doc{
			Key:   target.String(),
			Size:  int64(len(body)),
			Class: doctype.Classify(resp.Header.Get("Content-Type"), target.String()),
		},
		body:        body,
		contentType: resp.Header.Get("Content-Type"),
		status:      resp.StatusCode,
	}
	if s.cacheable(target.String(), resp, int64(len(body))) {
		s.insert(e)
	} else {
		s.metrics.uncacheable.Inc()
	}
	return e, nil
}

// cacheable applies the Section 2 preprocessing rules plus no-store.
func (s *Server) cacheable(urlStr string, resp *http.Response, size int64) bool {
	if !trace.CacheableStatus(resp.StatusCode) {
		return false
	}
	if trace.UncacheableURL(urlStr) {
		return false
	}
	if size > s.cfg.MaxObjectBytes || size > s.cfg.Capacity {
		return false
	}
	cc := resp.Header.Get("Cache-Control")
	if cc != "" && (containsToken(cc, "no-store") || containsToken(cc, "private")) {
		return false
	}
	return true
}

func containsToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// insert stores an entry, evicting as needed. The document is assigned
// its dense ID here, under the lock, so policies keying on Doc.ID (GD*'s
// estimator) see one stable ID per URL across refetches.
func (s *Server) insert(e *entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.doc.ID = s.ids.Intern(e.doc.Key)
	if old, ok := s.entries[e.doc.Key]; ok {
		s.pol.Remove(old.doc)
		s.used -= old.doc.Size
		delete(s.entries, e.doc.Key)
	}
	for s.used+e.doc.Size > s.cfg.Capacity {
		victim, ok := s.pol.Evict()
		if !ok {
			return
		}
		s.stats.Evictions++
		s.metrics.evictions.Inc()
		if ve, ok := s.entries[victim.Key]; ok && ve.doc == victim {
			delete(s.entries, victim.Key)
			s.used -= victim.Size
		}
	}
	s.entries[e.doc.Key] = e
	s.used += e.doc.Size
	s.pol.Insert(e.doc)
}

// serve writes the response and settles accounting and logging.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, key string, e *entry, hit bool) {
	size := int64(len(e.body))

	cls := e.doc.Class
	s.metrics.requests.Inc()
	s.metrics.requestsByClass[cls].Inc()
	if hit {
		s.metrics.hits.Inc()
		s.metrics.hitBytes.Add(size)
		s.metrics.hitsByClass[cls].Inc()
	} else {
		s.metrics.misses.Inc()
	}

	s.mu.Lock()
	s.stats.Requests++
	s.stats.ReqBytes += size
	s.stats.ByClass[cls].Requests++
	if hit {
		s.stats.Hits++
		s.stats.HitBytes += size
		s.stats.ByClass[cls].Hits++
	}
	if s.logw != nil {
		// The access log records what the trace pipeline consumes; the
		// simulator ignores Squid's action field, so TCP_MISS (the
		// writer's fixed action) is sufficient.
		_ = s.logw.Write(&trace.Request{
			UnixMillis:   s.now().UnixMilli(),
			URL:          key,
			Status:       e.status,
			TransferSize: size,
			ContentType:  e.contentType,
			Client:       clientAddr(r),
			Method:       http.MethodGet,
		})
		_ = s.logw.Flush()
	}
	s.mu.Unlock()

	if e.contentType != "" {
		w.Header().Set("Content-Type", e.contentType)
	}
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.WriteHeader(e.status)
	_, _ = w.Write(e.body)
}

func clientAddr(r *http.Request) string {
	if r.RemoteAddr == "" {
		return "-"
	}
	return r.RemoteAddr
}
