// Package proxy implements a working HTTP caching proxy on top of the
// replacement-policy engine — the system the simulator models. It serves
// both as a live demonstration of the policies and as a trace source: the
// proxy emits Squid-native access logs that feed straight back into the
// trace parser, characterization, and simulator.
//
// The serving path is built for concurrency: objects live in a sharded
// store (internal/cache) whose per-shard locks keep lookups on distinct
// URLs from contending, concurrent misses on one URL collapse into a
// single origin fetch (internal/flight), and the origin fetch itself is
// hardened — per-attempt timeout, bounded retries with jittered
// exponential backoff, and a stale-on-error fallback that serves an
// expired cached copy when the origin is unreachable. No lock is ever
// held across an origin round trip, so a slow origin on one URL cannot
// delay cache hits on any other. See docs/PROXY.md for the design.
//
// The proxy applies the same cacheability rules the paper's preprocessing
// assumes (GET only, the Section 2 status-code whitelist, the CGI/query
// heuristics) plus Cache-Control: no-store. Expiration is honored only as
// far as stale-on-error needs it: an entry past its max-age/Expires is
// revalidated by refetching, and served anyway if the origin is down.
// Full consistency protocols remain out of scope, as in the paper.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webcachesim/internal/cache"
	"webcachesim/internal/doctype"
	"webcachesim/internal/flight"
	"webcachesim/internal/metrics"
	"webcachesim/internal/policy"
	"webcachesim/internal/pool"
	"webcachesim/internal/trace"
)

// DefaultMaxObjectBytes bounds the size of a single cached response body.
const DefaultMaxObjectBytes = 8 << 20

// Default fetch-robustness parameters; see Config.
const (
	DefaultFetchTimeout = 15 * time.Second
	DefaultFetchRetries = 2
	DefaultRetryBackoff = 50 * time.Millisecond
)

// Config parameterizes a proxy server.
type Config struct {
	// Capacity is the cache size in bytes; it must be positive.
	Capacity int64
	// Policy builds the replacement scheme; LRU when unset. Each cache
	// shard runs its own instance.
	Policy policy.Factory
	// Shards is the cache shard count, rounded up to a power of two
	// (cache.DefaultShards when 0). One shard reproduces the exact
	// single-policy eviction order the simulator models; more shards
	// scale lookups across cores at the cost of per-shard (approximate)
	// eviction order.
	Shards int
	// Admission builds the optional admission filter that screens
	// cacheable responses before they may displace resident objects
	// (see docs/ADMISSION.md). Each cache shard runs its own instance,
	// like Policy. A zero value (nil New) admits everything.
	Admission policy.AdmitterFactory
	// Origin, when set, turns the proxy into a reverse proxy: every
	// request is rewritten to the origin. When nil, the proxy acts as a
	// forward proxy and requires absolute-form request URLs.
	Origin *url.URL
	// Parent, when set, routes upstream fetches through another HTTP
	// proxy — Squid's cache_peer parent relationship. Chaining two
	// Servers this way forms a live two-level cache hierarchy.
	Parent *url.URL
	// Cluster, when set, makes this proxy one node of a consistent-hash
	// fleet: a local miss on a document another node owns consults that
	// sibling before the origin (Squid's cache_peer sibling relationship,
	// with hash routing instead of ICP). Requires Origin (reverse mode).
	// See ClusterConfig and docs/CLUSTER.md.
	Cluster *ClusterConfig
	// Transport performs upstream fetches; http.DefaultTransport when
	// nil. Ignored when Parent is set.
	Transport http.RoundTripper
	// AccessLog, when set, receives Squid-native log lines.
	AccessLog io.Writer
	// MaxObjectBytes bounds a single cached object
	// (DefaultMaxObjectBytes when 0).
	MaxObjectBytes int64
	// FetchTimeout bounds each origin fetch attempt, round trip plus body
	// read (DefaultFetchTimeout when 0). The fetch runs on a detached
	// context: its result is shared by every coalesced waiter, so it must
	// not die with the first client that disconnects.
	FetchTimeout time.Duration
	// FetchRetries is the number of additional attempts after a failed
	// origin fetch (DefaultFetchRetries when 0; negative disables
	// retries). Attempts are spaced by jittered exponential backoff.
	FetchRetries int
	// RetryBackoff is the base delay before the first retry; each further
	// retry doubles it, and every delay is jittered by ±50%
	// (DefaultRetryBackoff when 0).
	RetryBackoff time.Duration
	// Now supplies timestamps (time.Now when nil); injectable for tests.
	Now func() time.Time
	// Buffers is the buffer pool backing the serving path — origin bodies
	// are read into its buffers and cached entries return them on their
	// last release (pool.Default when nil). Tests and benchmarks inject a
	// private pool to get isolated acquire/release accounting.
	Buffers *pool.Pool
	// Metrics, when set, receives the proxy's exported instrumentation
	// (request/hit/eviction counters, origin-fetch latency and object-size
	// histograms, occupancy gauges — see docs/METRICS.md). When nil the
	// proxy still keeps its counters on a private registry, so
	// instrumentation cost is identical either way: a few atomic adds per
	// request.
	Metrics *metrics.Registry
}

// Stats is a snapshot of the proxy's accounting, overall and per class.
type Stats struct {
	// Requests and Hits count all handled GET requests and cache hits.
	Requests int64 `json:"requests"`
	Hits     int64 `json:"hits"`
	// ReqBytes and HitBytes count body bytes requested and served from
	// cache.
	ReqBytes int64 `json:"reqBytes"`
	HitBytes int64 `json:"hitBytes"`
	// Evictions counts replacement victims.
	Evictions int64 `json:"evictions"`
	// Coalesced counts misses that shared another request's origin fetch
	// instead of issuing their own; they are included in the miss count.
	Coalesced int64 `json:"coalesced"`
	// StaleServed counts requests answered with an expired cached copy
	// because the origin was unreachable; they are included in the miss
	// count.
	StaleServed int64 `json:"staleServed"`
	// AdmissionRejects counts cacheable responses the admission filter
	// refused to store; always zero without a configured filter.
	AdmissionRejects int64 `json:"admissionRejects,omitempty"`
	// PeerHits counts requests answered from a sibling node's cache —
	// neither a local hit nor a miss: Requests = Hits + PeerHits + Misses
	// on a clustered proxy. Always zero without a cluster.
	PeerHits int64 `json:"peerHits,omitempty"`
	// ByClass breaks requests and hits down by document class.
	ByClass [doctype.NumClasses + 1]struct {
		Requests int64 `json:"requests"`
		Hits     int64 `json:"hits"`
	} `json:"byClass"`
}

// HitRate returns Hits/Requests, or 0 without traffic.
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// ByteHitRate returns HitBytes/ReqBytes, or 0 without traffic.
func (s Stats) ByteHitRate() float64 {
	if s.ReqBytes == 0 {
		return 0
	}
	return float64(s.HitBytes) / float64(s.ReqBytes)
}

// serveResult classifies how a request was answered, for headers and
// accounting. Requests = hits + peer hits + misses; coalesced and
// stale-served are sub-categories of miss.
type serveResult int

const (
	resultHit       serveResult = iota // fresh copy served from cache
	resultMiss                         // fetched from the origin by this request
	resultCoalesced                    // shared another request's origin fetch
	resultStale                        // origin down; expired copy served
	resultPeerHit                      // served from the owning sibling's cache
)

// Server is the caching proxy; it implements http.Handler.
type Server struct {
	cfg       Config
	transport http.RoundTripper
	now       func() time.Time
	store     *cache.Cache
	buffers   *pool.Pool
	fetches   flight.Group
	sleep     func(time.Duration) // retry backoff; injectable for tests

	// cluster is the fleet-routing view, nil on an unclustered proxy;
	// UpdateCluster swaps it atomically on membership changes. Peer
	// fetches use their own transport and timeout: Parent rewires
	// s.transport through the parent proxy, but sibling traffic must go
	// direct.
	cluster       atomic.Pointer[clusterState]
	peerTransport http.RoundTripper
	peerTimeout   time.Duration

	// originPrefix, when non-nil, is the byte-exact "scheme://host" prefix
	// every reverse-proxy cache key starts with — the zero-allocation hit
	// path appends the request's path and query to it in a pooled scratch
	// buffer instead of building a url.URL and calling String(). nil when
	// the fast path cannot guarantee byte-identity with targetURL (forward
	// mode, or an origin URL whose String() is not prefix-shaped).
	originPrefix []byte

	// mu guards only the cold accounting below — never any part of the
	// serving or fetching path.
	mu    sync.Mutex
	stats Stats
	logw  *trace.SquidWriter

	metrics *serverMetrics
}

var _ http.Handler = (*Server)(nil)

// New creates a proxy server.
func New(cfg Config) (*Server, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("proxy: capacity %d must be positive", cfg.Capacity)
	}
	if cfg.Policy.New == nil {
		cfg.Policy = policy.MustFactory(policy.Spec{Scheme: "lru"})
	}
	if cfg.MaxObjectBytes <= 0 {
		cfg.MaxObjectBytes = DefaultMaxObjectBytes
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = DefaultFetchTimeout
	}
	if cfg.FetchRetries == 0 {
		cfg.FetchRetries = DefaultFetchRetries
	}
	if cfg.FetchRetries < 0 {
		cfg.FetchRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.Cluster != nil && cfg.Origin == nil {
		return nil, fmt.Errorf("proxy: clustering requires reverse mode (Origin); fleet members must key their caches identically")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		transport: cfg.Transport,
		now:       cfg.Now,
		sleep:     time.Sleep,
		buffers:   cfg.Buffers,
		metrics:   newServerMetrics(reg, cfg.Admission.New != nil, cfg.Cluster != nil),
	}
	if cfg.Cluster != nil {
		cs, err := buildClusterState(*cfg.Cluster)
		if err != nil {
			return nil, err
		}
		s.cluster.Store(cs)
		s.peerTransport = cfg.Cluster.Transport
		if s.peerTransport == nil {
			s.peerTransport = http.DefaultTransport
		}
		s.peerTimeout = cfg.Cluster.PeerTimeout
		if s.peerTimeout <= 0 {
			s.peerTimeout = DefaultPeerTimeout
		}
	}
	if s.buffers == nil {
		s.buffers = pool.Default
	}
	if cfg.Origin != nil {
		// Probe whether reverse-proxy keys are prefix-shaped: build a key
		// exactly the way targetURL does and check it ends with the probe
		// path and query. If it does, the hit path can assemble keys as
		// prefix+path[+?query] without allocating; if not (userinfo,
		// ForceQuery, an opaque origin, ...), every request takes the
		// general path. Byte-identity with targetURL is what makes the
		// fast key safe: both paths address the same cache namespace.
		const probePath, probeQuery = "/fastkey-probe", "fastkey=1"
		u := *cfg.Origin
		u.Path = probePath
		u.RawQuery = probeQuery
		if str := u.String(); strings.HasSuffix(str, probePath+"?"+probeQuery) {
			s.originPrefix = []byte(strings.TrimSuffix(str, probePath+"?"+probeQuery))
		}
	}
	store, err := cache.New(cache.Config{
		Capacity:  cfg.Capacity,
		Shards:    cfg.Shards,
		Policy:    cfg.Policy,
		Admission: cfg.Admission,
		OnEvict:   func(*cache.Entry) { s.metrics.evictions.Inc() },
	})
	if err != nil {
		return nil, fmt.Errorf("proxy: %w", err)
	}
	s.store = store
	s.registerGauges(reg)
	if cfg.Parent != nil {
		parent := cfg.Parent
		s.transport = &http.Transport{
			Proxy: func(*http.Request) (*url.URL, error) { return parent, nil },
		}
	}
	if s.transport == nil {
		s.transport = http.DefaultTransport
	}
	if s.now == nil {
		s.now = time.Now
	}
	if cfg.AccessLog != nil {
		s.logw = trace.NewSquidWriter(cfg.AccessLog)
	}
	return s, nil
}

// Stats returns a snapshot of the proxy's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.Evictions = s.store.Evictions()
	st.AdmissionRejects = s.store.AdmissionRejects()
	return st
}

// Used returns the current cache occupancy in bytes.
func (s *Server) Used() int64 { return s.store.Used() }

// Len returns the number of cached objects.
func (s *Server) Len() int { return s.store.Len() }

// Shards returns the cache shard count.
func (s *Server) Shards() int { return s.store.Shards() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "proxy caches GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.originPrefix != nil && s.tryFastHit(w, r) {
		return
	}
	target, err := s.targetURL(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := target.String()

	if e, ok := s.store.Get(key); ok {
		if fresh(e, s.now()) {
			s.serve(w, r, key, e, resultHit, false)
			return
		}
		// Expired: revalidate by refetching (coalesced like any miss);
		// if the origin is down, fall back to the stale copy.
		fetched, res, ferr := s.fetchRouted(target, r)
		if ferr != nil {
			s.serve(w, r, key, e, resultStale, false)
			return
		}
		// The refetch superseded the stale copy; drop the reference Get
		// took on it before serving the fresh result.
		e.Release()
		if fetched.oversize {
			s.serveOversize(w, r, key, target, fetched, res)
			return
		}
		s.serve(w, r, key, fetched.entry, res, fetched.admissionRejected)
		return
	}

	fr, res, err := s.fetchRouted(target, r)
	if err != nil {
		http.Error(w, fmt.Sprintf("upstream: %v", err), http.StatusBadGateway)
		return
	}
	if fr.oversize {
		s.serveOversize(w, r, key, target, fr, res)
		return
	}
	s.serve(w, r, key, fr.entry, res, fr.admissionRejected)
}

// keySafe marks the bytes that survive url.URL.String() verbatim in a
// path: exactly the set net/url's path escaper leaves alone. A path made
// only of these bytes is its own escaped form, so appending it to
// originPrefix reproduces targetURL's key byte for byte.
var keySafe = func() (t [256]bool) {
	for c := 'a'; c <= 'z'; c++ {
		t[c] = true
	}
	for c := 'A'; c <= 'Z'; c++ {
		t[c] = true
	}
	for c := '0'; c <= '9'; c++ {
		t[c] = true
	}
	for _, c := range []byte("-_.~$&+,/:;=@") {
		t[c] = true
	}
	return
}()

// fastKeyable reports whether the request path is byte-identical to its
// escaped form — the precondition for assembling the cache key without
// url.URL.String(). A RawPath means the wire form differed from the
// decoded path; any unsafe byte would be re-escaped by String().
func fastKeyable(u *url.URL) bool {
	p := u.Path
	if u.RawPath != "" || len(p) == 0 || p[0] != '/' {
		return false
	}
	for i := 0; i < len(p); i++ {
		if !keySafe[p[i]] {
			return false
		}
	}
	return true
}

// tryFastHit is the zero-allocation serving path: assemble the cache key
// into a pooled scratch buffer, look it up without a string conversion,
// and serve a fresh hit with pre-resolved header values. It reports false
// — having served nothing and counted nothing — when the request needs
// the general path: key not fast-assemblable, cache miss, or stale entry
// (the general path repeats the lookup; the only cost is a duplicate
// policy touch on those rare requests).
func (s *Server) tryFastHit(w http.ResponseWriter, r *http.Request) bool {
	if !fastKeyable(r.URL) {
		return false
	}
	kb := s.buffers.Get(len(s.originPrefix) + len(r.URL.Path) + 1 + len(r.URL.RawQuery))
	n := copy(kb.B, s.originPrefix)
	n += copy(kb.B[n:], r.URL.Path)
	if r.URL.RawQuery != "" {
		kb.B[n] = '?'
		n++
		n += copy(kb.B[n:], r.URL.RawQuery)
	}
	e, ok := s.store.GetBytes(kb.B[:n])
	if !ok {
		kb.Release()
		return false
	}
	if !fresh(e, s.now()) {
		e.Release()
		kb.Release()
		return false
	}
	s.serveHit(w, r, kb.B[:n], e)
	kb.Release()
	return true
}

// Pre-resolved response-header value slices: assigning a shared slice
// into the header map skips the per-request []string{v} allocation that
// Header().Set performs. They are shared across requests and must never
// be mutated.
var (
	hdrHit       = []string{"HIT"}
	hdrMiss      = []string{"MISS"}
	hdrStale     = []string{"STALE"}
	hdrPeerHit   = []string{"PEER-HIT"}
	hdrCoalesced = []string{"1"}
	hdrAdmReject = []string{"reject"}
)

// serveHit writes a fresh cache hit and settles accounting — the fast
// path's tail. keyBytes is the request key in the caller's scratch
// buffer; it is only materialized to a string when access logging needs
// it. Consumes the caller's reference on e.
func (s *Server) serveHit(w http.ResponseWriter, r *http.Request, keyBytes []byte, e *cache.Entry) {
	size := int64(len(e.Body))
	cls := e.Doc.Class

	s.metrics.requests.Inc()
	s.metrics.requestsByClass[cls].Inc()
	s.metrics.hits.Inc()
	s.metrics.hitBytes.Add(size)
	s.metrics.hitsByClass[cls].Inc()

	s.mu.Lock()
	s.stats.Requests++
	s.stats.ReqBytes += size
	s.stats.ByClass[cls].Requests++
	s.stats.Hits++
	s.stats.HitBytes += size
	s.stats.ByClass[cls].Hits++
	if s.logw != nil {
		// Access logging is best-effort; a write error must not fail the
		// request being served.
		_ = s.logw.Write(&trace.Request{
			UnixMillis:   s.now().UnixMilli(),
			URL:          string(keyBytes),
			Status:       e.Status,
			TransferSize: size,
			ContentType:  e.ContentType,
			Client:       clientAddr(r),
			Method:       http.MethodGet,
		})
		// Access logging is best-effort; a flush error must not fail the
		// request that was already served.
		_ = s.logw.Flush()
	}
	s.mu.Unlock()

	h := w.Header()
	ct, cl := e.HeaderSlices()
	if ct != nil {
		h["Content-Type"] = ct
	}
	if cl != nil {
		h["Content-Length"] = cl
	} else {
		// Entry built without the constructors (no pre-resolved values).
		h.Set("Content-Length", strconv.FormatInt(size, 10))
	}
	h["X-Cache"] = hdrHit
	w.WriteHeader(e.Status)
	_, _ = w.Write(e.Body) // client disconnects surface here; nothing to do for them
	e.Release()
}

// fresh reports whether the entry is within its freshness lifetime (an
// entry without expiry metadata never goes stale — replacement, not
// consistency, retires it, as in the paper).
func fresh(e *cache.Entry, now time.Time) bool {
	return e.Expires.IsZero() || now.Before(e.Expires)
}

// targetURL resolves the upstream URL for a request.
func (s *Server) targetURL(r *http.Request) (*url.URL, error) {
	if s.cfg.Origin != nil {
		u := *s.cfg.Origin
		u.Path = r.URL.Path
		u.RawQuery = r.URL.RawQuery
		return &u, nil
	}
	if r.URL.IsAbs() {
		return r.URL, nil
	}
	if r.Host != "" {
		u := *r.URL
		u.Scheme = "http"
		u.Host = r.Host
		return &u, nil
	}
	return nil, errors.New("proxy: relative request without Host")
}

// fetchResult is the singleflight payload: the fetched entry plus
// whether the admission filter refused to store it. The flag rides along
// so the miss leader can report the decision in its response headers.
//
// An oversize result (body larger than MaxObjectBytes) carries no entry:
// prefix holds the MaxObjectBytes+1 bytes already read and body the
// still-open remainder of the origin response. The open body can be
// consumed exactly once, so only the miss leader — the caller whose
// singleflight execution produced this result — may stream it (and must
// close it and call release, which cancels the fetch's timeout context).
// Coalesced waiters sharing the result must refetch for themselves.
type fetchResult struct {
	entry             *cache.Entry
	admissionRejected bool

	// peerHit marks a body that came out of the owning sibling's cache
	// (its response said X-Cache: HIT); consumers serve it as PEER-HIT
	// rather than a miss.
	peerHit bool

	oversize bool
	prefix   []byte
	// prefixBuf is the pooled buffer backing prefix; owned by the miss
	// leader, who releases it after streaming (coalesced waiters never
	// touch the prefix — they refetch).
	prefixBuf   *pool.Buf
	body        io.ReadCloser
	release     context.CancelFunc
	status      int
	contentType string
	contentLen  int64 // origin Content-Length; -1 when unknown
}

// doShared funnels one fetch function through the singleflight group:
// concurrent misses on the same key share a single upstream round trip
// — whether it targets the origin or a cluster sibling, since both use
// the URL as the key — and only the caller that actually executed it is
// the miss leader (shared == false).
func (s *Server) doShared(key string, fn func() (*fetchResult, error)) (*fetchResult, bool, error) {
	v, err, shared := s.fetches.DoShared(key, func() (any, error) {
		return fn()
	}, func(v any, err error, consumers int) {
		// Runs once, after the fetch and before any waiter wakes: grant
		// one body reference per consumer. The entry arrives holding the
		// creator's reference, which becomes the miss leader's; each
		// coalesced waiter gets its own, so no consumer can observe the
		// pooled body recycled under it, however late it runs.
		if err != nil {
			return
		}
		if fr := v.(*fetchResult); fr.entry != nil {
			fr.entry.AcquireN(int32(consumers - 1))
		}
	})
	if err != nil {
		return nil, shared, err
	}
	return v.(*fetchResult), shared, nil
}

// fetchShared is the plain origin-fetch path through the singleflight
// group. A follower can find itself sharing a *peer* fetch that was
// already in flight on the same key (a membership change re-routed the
// document mid-run); the result's peerHit flag keeps its label truthful.
func (s *Server) fetchShared(target *url.URL, hdr http.Header) (*fetchResult, serveResult, error) {
	fr, shared, err := s.doShared(target.String(), func() (*fetchResult, error) {
		return s.fetchWithRetry(target, hdr)
	})
	if err != nil {
		res := resultMiss
		if shared {
			res = resultCoalesced
		}
		return nil, res, err
	}
	res := resultMiss
	switch {
	case fr.peerHit:
		res = resultPeerHit
	case shared:
		res = resultCoalesced
	}
	return fr, res, nil
}

// fetchWithRetry performs the origin fetch with bounded retries and
// jittered exponential backoff, storing the result when cacheable. Only
// transport-level failures are retried; any HTTP response — whatever its
// status — is the origin's answer and is returned as-is.
func (s *Server) fetchWithRetry(target *url.URL, hdr http.Header) (*fetchResult, error) {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.FetchRetries; attempt++ {
		if attempt > 0 {
			s.metrics.originRetries.Inc()
			s.sleep(backoff(s.cfg.RetryBackoff, attempt))
		}
		fr, err := s.fetchOnce(target, hdr)
		if err == nil {
			return fr, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// backoff returns the delay before the given retry attempt (1-based):
// base doubled per attempt, jittered uniformly over ±50% so synchronized
// retry waves decorrelate.
func backoff(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	return time.Duration((0.5 + rand.Float64()) * float64(d))
}

// fetchOnce performs one origin fetch attempt under the per-attempt
// timeout and caches the response when it is cacheable under the paper's
// rules. The context is detached from any client request: the result is
// shared by every coalesced waiter.
func (s *Server) fetchOnce(target *url.URL, hdr http.Header) (*fetchResult, error) {
	// The timeout context cannot be cancelled with a blanket defer: an
	// oversize response leaves fetchOnce with the body still open, and
	// cancelling here would abort the remainder the miss leader is about
	// to stream. Each exit settles the context (and body) explicitly;
	// the oversize path hands both off inside the fetchResult.
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.FetchTimeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target.String(), nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header = hdr.Clone()
	fetchStart := s.now()
	resp, err := s.transport.RoundTrip(req)
	if err != nil {
		cancel()
		s.metrics.originErrors.Inc()
		return nil, err
	}
	buf, n, readErr := s.readBody(resp)
	if readErr != nil {
		buf.Release()
		// The read already failed; a close failure has nothing to add.
		_ = resp.Body.Close()
		cancel()
		s.metrics.originErrors.Inc()
		return nil, readErr
	}
	now := s.now()
	s.metrics.originSeconds.Observe(now.Sub(fetchStart).Seconds())
	s.metrics.originBytes.Add(int64(n))
	key := target.String()
	if int64(n) > s.cfg.MaxObjectBytes {
		// The limited read ran one byte past the cacheable bound: the
		// document does not fit the cache, but the client must still get
		// every byte. Ship the prefix plus the open remainder to the miss
		// leader; serving a truncated body here was the bug this path
		// replaces.
		s.metrics.uncacheableOversize.Inc()
		return &fetchResult{
			oversize:    true,
			prefix:      buf.B[:n],
			prefixBuf:   buf,
			body:        resp.Body,
			release:     cancel,
			status:      resp.StatusCode,
			contentType: resp.Header.Get("Content-Type"),
			contentLen:  resp.ContentLength,
		}, nil
	}
	// The body was read to EOF; a close failure has nothing left to
	// corrupt.
	_ = resp.Body.Close()
	cancel()
	s.metrics.objectBytes.Observe(float64(n))
	e := newBodyEntry(s, key, buf, n, resp, now)
	fr := &fetchResult{entry: e}
	if s.cacheable(key, resp, int64(n)) {
		switch s.store.Insert(key, e) {
		case cache.SetStored:
			if s.metrics.admissionAdmitted != nil {
				s.metrics.admissionAdmitted.Inc()
			}
		case cache.SetRejectedAdmission:
			fr.admissionRejected = true
			if s.metrics.admissionRejected != nil {
				s.metrics.admissionRejected.Inc()
			}
		case cache.SetRejectedBudget:
			s.metrics.cacheRejects.Inc()
		}
	} else {
		s.metrics.uncacheableRules.Inc()
	}
	return fr, nil
}

// newBodyEntry materializes an upstream response body as a pooled,
// refcounted cache entry — the shared tail of the origin and peer fetch
// paths. Inserting it into the store (or not: peer-fetched bodies are
// served but never stored) is the caller's decision.
func newBodyEntry(s *Server, key string, buf *pool.Buf, n int, resp *http.Response, now time.Time) *cache.Entry {
	return cache.NewPooledEntry(
		&policy.Doc{
			Key:   key,
			Size:  int64(n),
			Class: doctype.Classify(resp.Header.Get("Content-Type"), key),
		},
		buf, n,
		resp.Header.Get("Content-Type"),
		resp.StatusCode,
		expiry(resp.Header, now),
	)
}

// readBody reads the origin response body into a pooled buffer, up to
// MaxObjectBytes+1 bytes — one past the cacheable bound, so the caller
// can distinguish "fits" from "oversize" exactly as the old
// io.ReadAll(io.LimitReader(...)) did, but without its grow-by-copy
// garbage: the buffer steps through pool classes (each step recycling
// its predecessor) and is sized up front when the origin declares a
// Content-Length. The returned buffer is always non-nil; on a read error
// the caller releases it.
func (s *Server) readBody(resp *http.Response) (*pool.Buf, int, error) {
	limit := int(s.cfg.MaxObjectBytes) + 1
	want := 32 << 10
	if cl := resp.ContentLength; cl >= 0 && cl+1 < int64(want) {
		// +1 leaves room for the EOF-detecting read past the declared
		// length without a grow step.
		want = int(cl) + 1
	}
	if want > limit {
		want = limit
	}
	buf := s.buffers.Get(want)
	n := 0
	for n < limit {
		if n == len(buf.B) {
			buf = s.buffers.Grow(buf, n, min(2*n, limit))
		}
		end := min(len(buf.B), limit)
		m, err := resp.Body.Read(buf.B[n:end])
		n += m
		if err == io.EOF {
			break
		}
		if err != nil {
			return buf, n, err
		}
	}
	return buf, n, nil
}

// expiry derives an entry's freshness deadline from Cache-Control max-age
// (s-maxage preferred, as for a shared cache) or the Expires header. The
// zero time means "never stale".
func expiry(h http.Header, now time.Time) time.Time {
	cc := h.Get("Cache-Control")
	if cc != "" {
		if secs, ok := maxAge(cc, "s-maxage"); ok {
			return now.Add(time.Duration(secs) * time.Second)
		}
		if secs, ok := maxAge(cc, "max-age"); ok {
			return now.Add(time.Duration(secs) * time.Second)
		}
	}
	if exp := h.Get("Expires"); exp != "" {
		if t, err := http.ParseTime(exp); err == nil {
			return t
		}
	}
	return time.Time{}
}

// maxAge extracts a non-negative `directive=N` seconds value from a
// Cache-Control header.
func maxAge(cc, directive string) (int64, bool) {
	for _, part := range strings.Split(cc, ",") {
		part = strings.TrimSpace(part)
		rest, ok := cutPrefixFold(part, directive)
		if !ok || !strings.HasPrefix(rest, "=") {
			continue
		}
		secs, err := strconv.ParseInt(strings.TrimSpace(rest[1:]), 10, 64)
		if err != nil || secs < 0 {
			return 0, false
		}
		return secs, true
	}
	return 0, false
}

// cutPrefixFold is strings.CutPrefix under ASCII case folding.
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return s, false
	}
	return s[len(prefix):], true
}

// cacheable applies the Section 2 preprocessing rules plus no-store.
func (s *Server) cacheable(urlStr string, resp *http.Response, size int64) bool {
	if !trace.CacheableStatus(resp.StatusCode) {
		return false
	}
	if trace.UncacheableURL(urlStr) {
		return false
	}
	if size > s.cfg.MaxObjectBytes || size > s.cfg.Capacity {
		return false
	}
	cc := resp.Header.Get("Cache-Control")
	if cc != "" && (containsToken(cc, "no-store") || containsToken(cc, "private")) {
		return false
	}
	return true
}

func containsToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// serve writes the response and settles accounting and logging.
// admRejected reports that this request's own origin fetch produced a
// cacheable response the admission filter refused; it is surfaced as an
// X-Admission header on miss-leader responses only, so load generators
// can reconcile header counts with wcproxy_admission_rejected_total.
// serve consumes the caller's reference on e: every path that reaches it
// holds exactly one (Get/GetBytes acquired it, or the singleflight
// prepare hook granted it), and serve releases it after the body is
// written.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, key string, e *cache.Entry, res serveResult, admRejected bool) {
	size := int64(len(e.Body))
	cls := e.Doc.Class

	s.metrics.requests.Inc()
	s.metrics.requestsByClass[cls].Inc()
	switch res {
	case resultHit:
		s.metrics.hits.Inc()
		s.metrics.hitBytes.Add(size)
		s.metrics.hitsByClass[cls].Inc()
	case resultPeerHit:
		// Neither a local hit (the bytes are a sibling's) nor a miss (no
		// origin traffic): requests = hits + peer hits + misses. Class
		// hits stay local-only — they are what the sim/live parity
		// harness reconciles against each node's own cache.
		s.metrics.peerHits.Inc()
	case resultCoalesced:
		s.metrics.misses.Inc()
		s.metrics.coalesced.Inc()
	case resultStale:
		s.metrics.misses.Inc()
		s.metrics.staleServed.Inc()
	default:
		s.metrics.misses.Inc()
	}

	s.mu.Lock()
	s.stats.Requests++
	s.stats.ReqBytes += size
	s.stats.ByClass[cls].Requests++
	switch res {
	case resultHit:
		s.stats.Hits++
		s.stats.HitBytes += size
		s.stats.ByClass[cls].Hits++
	case resultPeerHit:
		s.stats.PeerHits++
	case resultCoalesced:
		s.stats.Coalesced++
	case resultStale:
		s.stats.StaleServed++
	}
	if s.logw != nil {
		// The access log records what the trace pipeline consumes; the
		// simulator ignores Squid's action field, so TCP_MISS (the
		// writer's fixed action) is sufficient.
		_ = s.logw.Write(&trace.Request{
			UnixMillis:   s.now().UnixMilli(),
			URL:          key,
			Status:       e.Status,
			TransferSize: size,
			ContentType:  e.ContentType,
			Client:       clientAddr(r),
			Method:       http.MethodGet,
		})
		// Access logging is best-effort; a flush error must not fail the
		// request that was already served.
		_ = s.logw.Flush()
	}
	s.mu.Unlock()

	h := w.Header()
	ct, cl := e.HeaderSlices()
	if ct != nil {
		h["Content-Type"] = ct
	} else if e.ContentType != "" {
		h.Set("Content-Type", e.ContentType)
	}
	if cl != nil {
		h["Content-Length"] = cl
	} else {
		h.Set("Content-Length", strconv.FormatInt(size, 10))
	}
	switch res {
	case resultHit:
		h["X-Cache"] = hdrHit
	case resultPeerHit:
		h["X-Cache"] = hdrPeerHit
	case resultStale:
		h["X-Cache"] = hdrStale
	case resultCoalesced:
		h["X-Cache"] = hdrMiss
		h["X-Coalesced"] = hdrCoalesced
	default:
		h["X-Cache"] = hdrMiss
	}
	if admRejected && res == resultMiss {
		h["X-Admission"] = hdrAdmReject
	}
	w.WriteHeader(e.Status)
	_, _ = w.Write(e.Body) // client disconnects surface here; nothing to do for them
	e.Release()
}

// serveOversize answers a request whose origin body exceeded
// MaxObjectBytes: the full body is streamed through to the client,
// nothing is cached, and the request is accounted as a miss with the
// bytes actually streamed. The miss leader consumes the open body carried
// in the fetchResult; a coalesced waiter cannot (a stream is consumed
// exactly once), so it performs its own uncoalesced fetch and streams
// that instead.
func (s *Server) serveOversize(w http.ResponseWriter, r *http.Request, key string, target *url.URL, fr *fetchResult, res serveResult) {
	cls := doctype.Classify(fr.contentType, key)
	var streamed int64
	if res == resultMiss {
		streamed = s.streamOversizeBody(w, fr)
	} else {
		streamed = s.streamOversizeRefetch(w, target, r.Header)
	}

	s.metrics.requests.Inc()
	s.metrics.requestsByClass[cls].Inc()
	s.metrics.misses.Inc()
	if res == resultCoalesced {
		s.metrics.coalesced.Inc()
	}

	s.mu.Lock()
	s.stats.Requests++
	s.stats.ReqBytes += streamed
	s.stats.ByClass[cls].Requests++
	if res == resultCoalesced {
		s.stats.Coalesced++
	}
	if s.logw != nil {
		// Same trace record the cached path logs, with the streamed byte
		// count as the transfer size.
		_ = s.logw.Write(&trace.Request{
			UnixMillis:   s.now().UnixMilli(),
			URL:          key,
			Status:       fr.status,
			TransferSize: streamed,
			ContentType:  fr.contentType,
			Client:       clientAddr(r),
			Method:       http.MethodGet,
		})
		// Access logging is best-effort; a flush error must not fail the
		// request that was already served.
		_ = s.logw.Flush()
	}
	s.mu.Unlock()
}

// streamOversizeBody writes the buffered prefix and pipes the rest of the
// still-open origin body through to the client, returning the bytes
// delivered. It settles the body and the fetch's timeout context.
func (s *Server) streamOversizeBody(w http.ResponseWriter, fr *fetchResult) int64 {
	defer func() {
		// Whatever the copy below managed, the remainder's ownership ends
		// here: close the origin stream, release its timeout context, and
		// return the prefix's pooled buffer.
		_ = fr.body.Close()
		fr.release()
		fr.prefix = nil
		fr.prefixBuf.Release()
	}()
	if fr.contentType != "" {
		w.Header().Set("Content-Type", fr.contentType)
	}
	if fr.contentLen >= 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(fr.contentLen, 10))
	}
	w.Header().Set("X-Cache", "MISS")
	w.WriteHeader(fr.status)
	n, err := w.Write(fr.prefix)
	total := int64(n)
	if err != nil {
		return total // client went away mid-stream; nothing more to do
	}
	m, err := io.Copy(w, fr.body)
	total += m
	s.metrics.originBytes.Add(m) // the prefix was counted at fetch time
	if err != nil {
		s.metrics.originErrors.Inc()
	}
	return total
}

// streamOversizeRefetch is the coalesced waiter's path for an oversize
// result: the shared body belongs to the miss leader, so the waiter
// fetches the URL again — without singleflight, straight to the client,
// nothing buffered beyond the transport — and returns the bytes
// delivered.
func (s *Server) streamOversizeRefetch(w http.ResponseWriter, target *url.URL, hdr http.Header) int64 {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target.String(), nil)
	if err != nil {
		http.Error(w, fmt.Sprintf("upstream: %v", err), http.StatusBadGateway)
		return 0
	}
	req.Header = hdr.Clone()
	resp, err := s.transport.RoundTrip(req)
	if err != nil {
		s.metrics.originErrors.Inc()
		http.Error(w, fmt.Sprintf("upstream: %v", err), http.StatusBadGateway)
		return 0
	}
	defer func() {
		// The copy below drains the body; a close failure afterwards has
		// nothing left to corrupt.
		_ = resp.Body.Close()
	}()
	s.metrics.uncacheableOversize.Inc()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if resp.ContentLength >= 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(resp.ContentLength, 10))
	}
	w.Header().Set("X-Cache", "MISS")
	w.WriteHeader(resp.StatusCode)
	n, err := io.Copy(w, resp.Body)
	s.metrics.originBytes.Add(n)
	if err != nil {
		s.metrics.originErrors.Inc()
	}
	return n
}

func clientAddr(r *http.Request) string {
	if r.RemoteAddr == "" {
		return "-"
	}
	return r.RemoteAddr
}
