package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webcachesim/internal/cluster"
)

// lateHandler lets an httptest server start before the proxy behind it
// exists — the fleet helper's answer to the chicken-and-egg between peer
// URLs (needed at New) and listener addresses (known only after start).
type lateHandler struct {
	p atomic.Pointer[Server]
}

func (h *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s := h.p.Load()
	if s == nil {
		http.Error(w, "fleet member not bound yet", http.StatusServiceUnavailable)
		return
	}
	s.ServeHTTP(w, r)
}

// fleet is a set of in-process clustered proxies on loopback.
type fleet struct {
	names   []string
	servers []*Server
	fronts  []*httptest.Server
	ring    *cluster.Ring
}

// startFleet spins up n clustered reverse proxies in front of origin.
// mutate, when non-nil, adjusts each node's Config before New.
func startFleet(t *testing.T, origin *httptest.Server, n int, mutate func(i int, cfg *Config)) *fleet {
	t.Helper()
	f := &fleet{}
	handlers := make([]*lateHandler, n)
	urls := make(map[string]*url.URL, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		f.names = append(f.names, name)
		handlers[i] = &lateHandler{}
		front := httptest.NewServer(handlers[i])
		t.Cleanup(front.Close)
		f.fronts = append(f.fronts, front)
		u, err := url.Parse(front.URL)
		if err != nil {
			t.Fatal(err)
		}
		urls[name] = u
	}
	originURL, err := url.Parse(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		peers := make(map[string]*url.URL, n-1)
		for name, u := range urls {
			if name != f.names[i] {
				peers[name] = u
			}
		}
		cfg := Config{
			Capacity: 1 << 20,
			Origin:   originURL,
			Cluster:  &ClusterConfig{Self: f.names[i], Peers: peers},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.servers = append(f.servers, s)
		handlers[i].p.Store(s)
	}
	f.ring, err = cluster.NewRing(f.names, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// pathOwnedBy returns a path whose ring owner is the named node.
func (f *fleet) pathOwnedBy(t *testing.T, owner, suffix string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("/owned/%s/%d%s", owner, i, suffix)
		if f.ring.Owner(p) == owner {
			return p
		}
	}
	t.Fatalf("no path owned by %s found", owner)
	return ""
}

// idx returns the fleet index of the named node.
func (f *fleet) idx(t *testing.T, name string) int {
	t.Helper()
	for i, n := range f.names {
		if n == name {
			return i
		}
	}
	t.Fatalf("no node %s", name)
	return -1
}

func TestClusterPeerHitAndOwnerOnlyStorage(t *testing.T) {
	var mu sync.Mutex
	originFetches := map[string]int{}
	origin := newOrigin(t, func(path string) {
		mu.Lock()
		originFetches[path]++
		mu.Unlock()
	})
	f := startFleet(t, origin, 2, nil)

	path := f.pathOwnedBy(t, "n0", ".html")
	owner, other := f.idx(t, "n0"), f.idx(t, "n1")

	// Cold request at a non-owner: forwarded to the owner, which misses
	// and fetches the origin — the arrival node reports a plain MISS.
	resp, body := get(t, f.fronts[other].URL, path)
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("cold non-owner request: X-Cache = %q, want MISS", got)
	}
	if want := "body-of-" + path; body != want {
		t.Fatalf("body = %q, want %q", body, want)
	}

	// Warm request at the non-owner: the owner now has it — PEER-HIT.
	resp, body = get(t, f.fronts[other].URL, path)
	if got := resp.Header.Get("X-Cache"); got != "PEER-HIT" {
		t.Fatalf("warm non-owner request: X-Cache = %q, want PEER-HIT", got)
	}
	if want := "body-of-" + path; body != want {
		t.Fatalf("body = %q, want %q", body, want)
	}

	// Owner-only storage: the owner cached the document, the non-owner
	// stored nothing — and the origin was fetched exactly once.
	if got := f.servers[owner].Len(); got != 1 {
		t.Errorf("owner cached %d objects, want 1", got)
	}
	if got := f.servers[other].Len(); got != 0 {
		t.Errorf("non-owner cached %d objects, want 0 (owner-only storage)", got)
	}
	mu.Lock()
	fetches := originFetches[path]
	mu.Unlock()
	if fetches != 1 {
		t.Errorf("origin fetched %d times, want 1", fetches)
	}

	st := f.servers[other].Stats()
	if st.PeerHits != 1 || st.Hits != 0 {
		t.Errorf("non-owner stats: PeerHits=%d Hits=%d, want 1/0", st.PeerHits, st.Hits)
	}
	if st.Requests != 2 || st.Requests != st.Hits+st.PeerHits+1 { // the cold request was the 1 miss
		t.Errorf("non-owner accounting does not partition: %+v", st)
	}
	ownerStats := f.servers[owner].Stats()
	if ownerStats.Hits != 1 {
		// The peer's second consultation is a local hit at the owner.
		t.Errorf("owner Hits = %d, want 1", ownerStats.Hits)
	}
}

func TestClusterPeerDownFallsBackToOrigin(t *testing.T) {
	origin := newOrigin(t, nil)
	f := startFleet(t, origin, 2, nil)

	// Kill n0: its listener closes, so any peer fetch to it fails at the
	// transport. Requests for n0-owned documents arriving at n1 must
	// still succeed via the origin.
	f.fronts[f.idx(t, "n0")].Close()
	path := f.pathOwnedBy(t, "n0", ".html")
	other := f.idx(t, "n1")

	resp, body := get(t, f.fronts[other].URL, path)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("status=%d X-Cache=%q, want 200 MISS", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if want := "body-of-" + path; body != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
	if got := f.servers[other].metrics.peerErrors.Value(); got != 1 {
		t.Errorf("peer_errors = %d, want 1", got)
	}
	if got := f.servers[other].metrics.peerFetches.Value(); got != 1 {
		t.Errorf("peer_fetches = %d, want 1", got)
	}
}

func TestClusterPeerTimeoutFallsBackToOrigin(t *testing.T) {
	origin := newOrigin(t, nil)
	// A sibling that never answers: the handler parks until the client
	// gives up (the request context ends when the peer fetch times out).
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(stuck.Close)
	stuckURL, err := url.Parse(stuck.URL)
	if err != nil {
		t.Fatal(err)
	}

	originURL, err := url.Parse(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Capacity: 1 << 20,
		Origin:   originURL,
		Cluster: &ClusterConfig{
			Self:        "n1",
			Peers:       map[string]*url.URL{"n0": stuckURL},
			PeerTimeout: 50 * time.Millisecond,
			// Peer fetches must not share the client's pooled transport:
			// a separate transport keeps the timed-out connection from
			// poisoning unrelated tests.
			Transport: &http.Transport{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(s)
	t.Cleanup(front.Close)

	ring, err := cluster.NewRing([]string{"n0", "n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := ""
	for i := 0; i < 10000 && path == ""; i++ {
		p := fmt.Sprintf("/slow/%d.html", i)
		if ring.Owner(p) == "n0" {
			path = p
		}
	}
	start := time.Now()
	resp, body := get(t, front.URL, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if want := "body-of-" + path; body != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("request took %v; peer timeout did not bound the stall", elapsed)
	}
	if got := s.metrics.peerErrors.Value(); got != 1 {
		t.Errorf("peer_errors = %d, want 1", got)
	}
}

func TestClusterNonAuthoritativePeerAnswer(t *testing.T) {
	origin := newOrigin(t, nil)
	// A sibling that is up but broken: it answers 502 without X-Cache,
	// as the proxy's own error paths do. That must count as a peer error
	// and fall through to the origin, not be relayed to the client.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "upstream: dead", http.StatusBadGateway)
	}))
	t.Cleanup(broken.Close)
	brokenURL, err := url.Parse(broken.URL)
	if err != nil {
		t.Fatal(err)
	}
	originURL, err := url.Parse(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Capacity: 1 << 20,
		Origin:   originURL,
		Cluster:  &ClusterConfig{Self: "n1", Peers: map[string]*url.URL{"n0": brokenURL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(s)
	t.Cleanup(front.Close)

	ring, err := cluster.NewRing([]string{"n0", "n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := ""
	for i := 0; i < 10000 && path == ""; i++ {
		p := fmt.Sprintf("/broken/%d.html", i)
		if ring.Owner(p) == "n0" {
			path = p
		}
	}
	resp, body := get(t, front.URL, path)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("status=%d X-Cache=%q, want 200 MISS from origin fallback",
			resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if want := "body-of-" + path; body != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
	if got := s.metrics.peerErrors.Value(); got != 1 {
		t.Errorf("peer_errors = %d, want 1", got)
	}
}

func TestClusterLoopGuard(t *testing.T) {
	origin := newOrigin(t, nil)
	f := startFleet(t, origin, 2, nil)

	// Issue a request to n1 for an n0-owned document with the loop-guard
	// header already set, as if n1 were itself the consulted peer. n1
	// must serve it locally — never forwarding — so n0 sees nothing and
	// n1's peer_fetches stays zero.
	path := f.pathOwnedBy(t, "n0", ".html")
	other := f.idx(t, "n1")

	req, err := http.NewRequest(http.MethodGet, f.fronts[other].URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(PeerHeader, "n9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("X-Cache = %q, want MISS (served locally)", got)
	}
	if got := f.servers[other].metrics.peerFetches.Value(); got != 0 {
		t.Errorf("peer_fetches = %d, want 0 — the loop guard must stop re-routing", got)
	}
	if got := f.servers[f.idx(t, "n0")].Stats().Requests; got != 0 {
		t.Errorf("owner saw %d requests, want 0", got)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	originURL, err := url.Parse("http://origin.example")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := url.Parse("http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"forward mode", Config{Capacity: 1 << 20,
			Cluster: &ClusterConfig{Self: "a", Peers: map[string]*url.URL{"b": peer}}}},
		{"no self", Config{Capacity: 1 << 20, Origin: originURL,
			Cluster: &ClusterConfig{Peers: map[string]*url.URL{"b": peer}}}},
		{"no peers", Config{Capacity: 1 << 20, Origin: originURL,
			Cluster: &ClusterConfig{Self: "a"}}},
		{"self in peers", Config{Capacity: 1 << 20, Origin: originURL,
			Cluster: &ClusterConfig{Self: "a", Peers: map[string]*url.URL{"a": peer}}}},
		{"nil peer URL", Config{Capacity: 1 << 20, Origin: originURL,
			Cluster: &ClusterConfig{Self: "a", Peers: map[string]*url.URL{"b": nil}}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
}

func TestUpdateClusterRequiresCluster(t *testing.T) {
	origin := newOrigin(t, nil)
	p, _ := newProxy(t, origin, Config{})
	err := p.UpdateCluster(ClusterConfig{Self: "a", Peers: map[string]*url.URL{"b": {Scheme: "http", Host: "x"}}})
	if err == nil {
		t.Fatal("UpdateCluster on an unclustered proxy must fail: its peer counters were never registered")
	}
}

// TestClusterJoinMidRun drives a 3-node fleet whose first two members
// start with a 2-node ring, then — with load in flight — grows both
// rings to include the third node. Nothing may panic or race, every
// response must be correct, and no document may be fetched from the
// origin more than twice (once by its old owner, once by its new one).
func TestClusterJoinMidRun(t *testing.T) {
	var mu sync.Mutex
	originFetches := map[string]int{}
	origin := newOrigin(t, func(path string) {
		mu.Lock()
		originFetches[path]++
		mu.Unlock()
	})
	f := startFleet(t, origin, 3, nil)

	// Shrink n0 and n1 to a 2-node view; n2 keeps the full ring (it only
	// serves peer-guarded traffic until the others learn about it).
	urls := make(map[string]*url.URL, 3)
	for i, front := range f.fronts {
		u, err := url.Parse(front.URL)
		if err != nil {
			t.Fatal(err)
		}
		urls[f.names[i]] = u
	}
	for _, self := range []string{"n0", "n1"} {
		if err := f.servers[f.idx(t, self)].UpdateCluster(ClusterConfig{
			Self:  self,
			Peers: map[string]*url.URL{otherOf(self): urls[otherOf(self)]},
		}); err != nil {
			t.Fatal(err)
		}
	}

	const docs = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/join/%d.html", i%docs)
				front := f.fronts[(c+i)%2] // drive the two original nodes
				resp, err := http.Get(front.URL + path)
				if err != nil {
					t.Errorf("request failed: %v", err)
					return
				}
				body := drainString(t, resp)
				if want := "body-of-" + path; body != want {
					t.Errorf("body = %q, want %q", body, want)
					return
				}
			}
		}(c)
	}

	time.Sleep(50 * time.Millisecond)
	// The join: both original members swap in the 3-node ring mid-load.
	for _, self := range []string{"n0", "n1"} {
		peers := make(map[string]*url.URL, 2)
		for name, u := range urls {
			if name != self {
				peers[name] = u
			}
		}
		if err := f.servers[f.idx(t, self)].UpdateCluster(ClusterConfig{Self: self, Peers: peers}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for path, n := range originFetches {
		if n > 2 {
			t.Errorf("%s fetched from origin %d times; ownership can change at most once", path, n)
		}
	}
}

func otherOf(self string) string {
	if self == "n0" {
		return "n1"
	}
	return "n0"
}

func drainString(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return string(b)
}
