package proxy

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"

	"webcachesim/internal/metrics"
)

// AdminHandler serves the proxy's operational endpoints, meant for a
// separate, non-public listener (wcproxy -admin):
//
//	/metrics      Prometheus text exposition of reg
//	/stats        JSON snapshot of the proxy's Stats plus occupancy
//	/debug/pprof/ the standard Go profiling endpoints
//	/debug/vars   the process expvar namespace
//	/             a plain-text index of the above
//
// The pprof handlers are mounted explicitly rather than through
// net/http/pprof's init side effect, so profiling is only reachable
// through this handler — never on the proxy's traffic port.
func AdminHandler(s *Server, reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//lint:ignore errdrop stats snapshot is best-effort; an encode error just means the client hung up
		_ = enc.Encode(struct {
			Stats
			UsedBytes     int64 `json:"usedBytes"`
			Objects       int   `json:"objects"`
			CapacityBytes int64 `json:"capacityBytes"`
		}{s.Stats(), s.Used(), s.Len(), s.cfg.Capacity})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Index page write failure means the admin client went away.
		_, _ = w.Write([]byte("wcproxy admin endpoints:\n" +
			"  /metrics       Prometheus text format\n" +
			"  /stats         JSON statistics snapshot\n" +
			"  /debug/pprof/  Go profiling\n" +
			"  /debug/vars    expvar\n"))
	})
	return mux
}
