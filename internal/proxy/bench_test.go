package proxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// The scaling benchmark: the sharded, miss-coalescing server against a
// compact reimplementation of the pre-sharding design (one global mutex,
// no singleflight), at 1, 4 and 8 closed-loop clients. `make bench`
// records the comparison in BENCH_proxy.json.
//
// The workload is a miss storm: clients walk a shared URL sequence in
// lockstep (url = n/conc), so at any moment all of them want the same
// cold object — the hot-object arrival burst that motivates coalescing.
// The fake origin charges real CPU work synthesizing each body, spread
// over several scheduler yield points the way a real round trip is spread
// over network reads; during those yields other clients run, see the
// still-absent entry, and — in the single-lock design — start their own
// duplicate fetch. Coalescing pays the origin price once per OBJECT
// instead of once per REQUEST, and since the price is CPU, the gap
// survives on a single-core host (time.Sleep cannot stand in for origin
// cost here: this container's timer granularity is ~1ms, so sleeps would
// swamp the work being measured).

const (
	benchBodySize = 64 << 10
	benchCPUWork  = 6 // xorshift passes over the body
	benchIOSlices = 4 // yield points per fetch, as network reads would
)

// benchOrigin synthesizes deterministic bodies at a fixed CPU cost.
type benchOrigin struct{}

func (benchOrigin) RoundTrip(req *http.Request) (*http.Response, error) {
	body := make([]byte, benchBodySize)
	x := uint64(len(req.URL.Path)) + 0x9e3779b97f4a7c15
	slice := len(body) / benchIOSlices
	for pass := 0; pass < benchCPUWork; pass++ {
		for i := range body {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			body[i] = byte(x)
			if (i+1)%slice == 0 {
				runtime.Gosched()
			}
		}
	}
	h := make(http.Header)
	h.Set("Content-Type", "image/gif")
	return &http.Response{
		StatusCode:    http.StatusOK,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
	}, nil
}

// singleLockProxy is the old serving path, reduced to its concurrency
// structure: one mutex around one map, and every miss does its own origin
// fetch. It skips replacement bookkeeping entirely, which only flatters
// it.
type singleLockProxy struct {
	mu        sync.Mutex
	entries   map[string][]byte
	transport http.RoundTripper
}

func (p *singleLockProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.URL.String()
	p.mu.Lock()
	body, ok := p.entries[key]
	p.mu.Unlock()
	if !ok {
		req, err := http.NewRequest(http.MethodGet, key, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp, err := p.transport.RoundTrip(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		body, err = io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		p.mu.Lock()
		p.entries[key] = body
		p.mu.Unlock()
	}
	_, _ = w.Write(body)
}

// benchServe drives b.N requests through the handler with conc
// closed-loop clients sharing one URL sequence.
func benchServe(b *testing.B, h http.Handler, conc int) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				if n >= int64(b.N) {
					return
				}
				path := fmt.Sprintf("/d%d.gif", n/int64(conc))
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, absReq(path))
				if rr.Code != http.StatusOK {
					b.Errorf("%s: status %d", path, rr.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkProxySingleLock(b *testing.B) {
	for _, conc := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("c%d", conc), func(b *testing.B) {
			p := &singleLockProxy{entries: map[string][]byte{}, transport: benchOrigin{}}
			benchServe(b, p, conc)
		})
	}
}

func BenchmarkProxySharded(b *testing.B) {
	for _, conc := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("c%d", conc), func(b *testing.B) {
			p, err := New(Config{Capacity: 1 << 31, Transport: benchOrigin{}})
			if err != nil {
				b.Fatal(err)
			}
			benchServe(b, p, conc)
		})
	}
}

// The steady-state hit benchmark pair: the pooled, pre-resolved serving
// path against a compact reimplementation of the pre-pool hit path (URL
// struct copy + String() for the key, Header().Set with a freshly
// formatted Content-Length, per-call []string header values). Both serve
// the same resident object through a no-op ResponseWriter, so the
// measured ns/op and allocs/op are the serve path itself, not net/http's
// response plumbing. `make bench` derives the allocation reduction in
// BENCH_proxy.json, and `make alloc-smoke` asserts ProxyHit stays at
// exactly 0 allocs/op.

const hitBenchBody = 16 << 10

func BenchmarkProxyHit(b *testing.B) {
	s, _ := reverseProxy(b, Config{}, patternOrigin{size: hitBenchBody})
	warm := httptest.NewRecorder()
	s.ServeHTTP(warm, httptest.NewRequest(http.MethodGet, "/hot.gif", nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warmup status %d", warm.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/hot.gif", nil)
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(w, req)
	}
}

// legacyHitServer reproduces the pre-pool hit path's allocation profile:
// the request key is built by copying the origin URL and calling
// String(), and every response header value is allocated per request.
type legacyHitServer struct {
	origin  *url.URL
	mu      sync.Mutex
	entries map[string]*legacyEntry
}

type legacyEntry struct {
	body        []byte
	contentType string
	status      int
}

func (p *legacyHitServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	u := *p.origin
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	key := u.String()
	p.mu.Lock()
	e, ok := p.entries[key]
	p.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", e.contentType)
	w.Header().Set("Content-Length", strconv.FormatInt(int64(len(e.body)), 10))
	w.Header().Set("X-Cache", "HIT")
	w.WriteHeader(e.status)
	_, _ = w.Write(e.body)
}

func BenchmarkProxyHitLegacy(b *testing.B) {
	origin, err := url.Parse("http://origin.example")
	if err != nil {
		b.Fatal(err)
	}
	p := &legacyHitServer{origin: origin, entries: map[string]*legacyEntry{
		"http://origin.example/hot.gif": {
			body:        patternBody("/hot.gif", hitBenchBody),
			contentType: "image/gif",
			status:      http.StatusOK,
		},
	}}
	req := httptest.NewRequest(http.MethodGet, "/hot.gif", nil)
	w := &nopWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ServeHTTP(w, req)
	}
}
