package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"webcachesim/internal/doctype"
	"webcachesim/internal/policy"
	"webcachesim/internal/trace"
)

// newOrigin builds a test origin serving deterministic content per path.
func newOrigin(t *testing.T, hook func(path string)) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hook != nil {
			hook(r.URL.Path)
		}
		switch {
		case strings.HasSuffix(r.URL.Path, ".gif"):
			w.Header().Set("Content-Type", "image/gif")
		case strings.HasSuffix(r.URL.Path, ".html"):
			w.Header().Set("Content-Type", "text/html")
		case strings.HasSuffix(r.URL.Path, ".nostore"):
			w.Header().Set("Cache-Control", "no-store")
		case strings.HasSuffix(r.URL.Path, ".missing"):
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "body-of-%s", r.URL.Path)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// newProxy builds a reverse-mode proxy in front of origin.
func newProxy(t *testing.T, origin *httptest.Server, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	u, err := url.Parse(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Origin = u
	if cfg.Capacity == 0 {
		cfg.Capacity = 1 << 20
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front
}

func get(t *testing.T, base, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestProxyHitMiss(t *testing.T) {
	var mu sync.Mutex
	originCalls := map[string]int{}
	origin := newOrigin(t, func(path string) {
		mu.Lock()
		originCalls[path]++
		mu.Unlock()
	})
	p, front := newProxy(t, origin, Config{})

	resp, body := get(t, front.URL, "/a.gif")
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Errorf("first request X-Cache = %q, want MISS", resp.Header.Get("X-Cache"))
	}
	if body != "body-of-/a.gif" {
		t.Errorf("body = %q", body)
	}
	resp, body = get(t, front.URL, "/a.gif")
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Errorf("second request X-Cache = %q, want HIT", resp.Header.Get("X-Cache"))
	}
	if body != "body-of-/a.gif" {
		t.Errorf("cached body = %q", body)
	}
	mu.Lock()
	calls := originCalls["/a.gif"]
	mu.Unlock()
	if calls != 1 {
		t.Errorf("origin fetched %d times, want 1", calls)
	}
	st := p.Stats()
	if st.Requests != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ByClass[doctype.Image].Hits != 1 {
		t.Errorf("image class hits = %d, want 1", st.ByClass[doctype.Image].Hits)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestProxyUncacheableRules(t *testing.T) {
	origin := newOrigin(t, nil)
	p, front := newProxy(t, origin, Config{})

	tests := []struct {
		name string
		path string
	}{
		{"query string", "/page.html?id=1"},
		{"cgi path", "/cgi-bin/run"},
		{"404 status", "/gone.missing"},
		{"no-store", "/secret.nostore"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			get(t, front.URL, tt.path)
			resp, _ := get(t, front.URL, tt.path)
			if resp.Header.Get("X-Cache") != "MISS" {
				t.Errorf("%s was cached", tt.path)
			}
		})
	}
	if p.Len() != 0 {
		t.Errorf("cache holds %d objects, want 0", p.Len())
	}
}

func TestProxyEviction(t *testing.T) {
	origin := newOrigin(t, nil)
	// Bodies are ~15 bytes; capacity of 40 holds two objects. One shard
	// keeps the eviction order exactly LRU — the configuration under
	// which the proxy reproduces the paper's single-policy semantics.
	p, front := newProxy(t, origin, Config{Capacity: 40, Shards: 1})
	get(t, front.URL, "/a.gif")
	get(t, front.URL, "/b.gif")
	get(t, front.URL, "/c.gif") // evicts /a.gif under LRU
	if got := p.Used(); got > 40 {
		t.Errorf("used %d exceeds capacity", got)
	}
	resp, _ := get(t, front.URL, "/a.gif")
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Error("evicted object served as hit")
	}
	if p.Stats().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestProxyPolicyPluggable(t *testing.T) {
	origin := newOrigin(t, nil)
	gds := policy.MustFactory(policy.Spec{Scheme: "gds", Cost: policy.ConstantCost{}})
	p, front := newProxy(t, origin, Config{Capacity: 38, Policy: gds, Shards: 1})
	// GDS(1) evicts the largest c/s loser; with equal-cost docs the
	// bigger body goes first.
	get(t, front.URL, "/tiny.gif")          // 17 bytes
	get(t, front.URL, "/bigbigbigname.gif") // 26 bytes -> must evict tiny? no: fits? 17+26=43 > 38 evicts tiny (H smaller for large doc... )
	if p.Used() > 38 {
		t.Errorf("used %d exceeds capacity", p.Used())
	}
	_ = p
}

func TestProxyMethodNotAllowed(t *testing.T) {
	origin := newOrigin(t, nil)
	_, front := newProxy(t, origin, Config{})
	resp, err := http.Post(front.URL+"/a.gif", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestProxyAccessLogFeedsTracePipeline(t *testing.T) {
	origin := newOrigin(t, nil)
	var log strings.Builder
	fixed := time.UnixMilli(982347195744)
	p, front := newProxy(t, origin, Config{
		AccessLog: &log,
		Now:       func() time.Time { return fixed },
	})
	get(t, front.URL, "/a.gif")
	get(t, front.URL, "/a.gif")
	get(t, front.URL, "/b.html")
	_ = p

	reqs, err := trace.ReadAll(trace.NewSquidReader(strings.NewReader(log.String())))
	if err != nil {
		t.Fatalf("proxy log did not parse: %v", err)
	}
	if len(reqs) != 3 {
		t.Fatalf("log has %d records, want 3", len(reqs))
	}
	if reqs[0].UnixMillis != fixed.UnixMilli() {
		t.Errorf("timestamp = %d, want %d", reqs[0].UnixMillis, fixed.UnixMilli())
	}
	if reqs[0].ContentType != "image/gif" {
		t.Errorf("content type = %q", reqs[0].ContentType)
	}
	if reqs[0].Classify() != doctype.Image || reqs[2].Classify() != doctype.HTML {
		t.Error("log records misclassified")
	}
	if !trace.Cacheable(reqs[0]) {
		t.Error("log record not cacheable by pipeline rules")
	}
}

func TestProxyForwardMode(t *testing.T) {
	origin := newOrigin(t, nil)
	p, err := New(Config{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	// Forward-proxy request with absolute URL.
	client := &http.Client{Transport: &http.Transport{Proxy: func(*http.Request) (*url.URL, error) {
		return url.Parse(front.URL)
	}}}
	resp, err := client.Get(origin.URL + "/fwd.gif")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "body-of-/fwd.gif" {
		t.Errorf("forward body = %q", body)
	}
	resp, err = client.Get(origin.URL + "/fwd.gif")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Error("forward mode second request not a hit")
	}
}

func TestProxyParentChaining(t *testing.T) {
	var originHits int
	var mu sync.Mutex
	origin := newOrigin(t, func(string) {
		mu.Lock()
		originHits++
		mu.Unlock()
	})

	// Parent: a forward proxy with a large cache.
	parent, err := New(Config{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	parentSrv := httptest.NewServer(parent)
	defer parentSrv.Close()
	parentURL, err := url.Parse(parentSrv.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Child: a tiny reverse proxy in front of origin, fetching through
	// the parent (Squid cache_peer style).
	originURL, err := url.Parse(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	child, err := New(Config{Capacity: 20, Origin: originURL, Parent: parentURL})
	if err != nil {
		t.Fatal(err)
	}
	childSrv := httptest.NewServer(child)
	defer childSrv.Close()

	// The body (~15B) never fits the child's 20-byte cache alongside a
	// second doc, so repeated alternating requests keep missing the child
	// but hit the parent; the origin is fetched once per distinct doc.
	for i := 0; i < 3; i++ {
		get(t, childSrv.URL, "/one.gif")
		get(t, childSrv.URL, "/two.gif")
	}
	mu.Lock()
	hits := originHits
	mu.Unlock()
	if hits != 2 {
		t.Errorf("origin fetched %d times, want 2 (parent should absorb repeats)", hits)
	}
	if parent.Stats().Hits == 0 {
		t.Error("parent cache recorded no hits")
	}
}

func TestProxyConfigValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestProxyConcurrentClients(t *testing.T) {
	origin := newOrigin(t, nil)
	p, front := newProxy(t, origin, Config{Capacity: 512})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/doc%d.gif", front.URL, (g+i)%10))
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				_, _ = io.ReadAll(resp.Body)
				_ = resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Requests != 240 {
		t.Errorf("requests = %d, want 240", st.Requests)
	}
	if p.Used() > 512 {
		t.Errorf("capacity exceeded under concurrency: %d", p.Used())
	}
}

func TestStatsRates(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 || s.ByteHitRate() != 0 {
		t.Error("zero stats should rate 0")
	}
	s.Requests, s.Hits = 4, 1
	s.ReqBytes, s.HitBytes = 100, 25
	if s.HitRate() != 0.25 || s.ByteHitRate() != 0.25 {
		t.Errorf("rates = %v, %v", s.HitRate(), s.ByteHitRate())
	}
}
