// Package cache implements the proxy's concurrent object store: a sharded
// in-memory cache whose eviction order is decided by the replacement
// policies from internal/policy, with a single global byte budget shared
// by all shards.
//
// Keys are spread across N power-of-two shards by trace.Hash64; each shard
// owns a mutex, an entry map, and a private policy instance, so lookups on
// different shards never contend. Capacity, by contrast, is global: one
// atomic counter holds the resident byte total, and an insert reserves its
// bytes with a compare-and-swap loop before the entry becomes visible.
// The reservation either fits under the budget or forces an eviction —
// from the inserting key's home shard first, then sweeping the other
// shards — so the resident total NEVER exceeds the configured capacity,
// under any interleaving. That invariant is what the property and race
// tests in this package pin down.
//
// The price of sharding is that eviction order is policy-exact only
// within a shard: the victim is chosen by the policy of whichever shard
// gives one up, not by a globally ordered priority. With one shard the
// cache degrades to the exact single-policy semantics the paper's
// simulator models (and the proxy tests that assert exact LRU order run
// that way); with many shards the order is a per-shard approximation,
// which is the standard trade in production caches. See docs/PROXY.md.
package cache

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"webcachesim/internal/policy"
	"webcachesim/internal/trace"
)

// DefaultShards is the shard count used when Config.Shards is zero. 16 is
// enough to make shard-lock collisions rare at the concurrency a single
// proxy process sees, while keeping per-shard policy state warm.
const DefaultShards = 16

// maxShards bounds the shard count; beyond this the per-shard maps are so
// sparse that sharding only wastes memory.
const maxShards = 1 << 12

// Config parameterizes a Cache.
type Config struct {
	// Capacity is the global byte budget; it must be positive.
	Capacity int64
	// Shards is the shard count, rounded up to a power of two
	// (DefaultShards when 0).
	Shards int
	// Policy builds one replacement-policy instance per shard; LRU when
	// unset.
	Policy policy.Factory
	// OnEvict, when set, observes every eviction. It is called with the
	// victim's shard lock held: it must be fast and must not call back
	// into the cache.
	OnEvict func(*Entry)
	// Admission configures an admission filter (see internal/admission):
	// one admitter per shard, each sized for the shard's share of the
	// byte budget and keyed by that shard's interned IDs. The zero value
	// admits everything. Requires the policy to implement policy.Peeker.
	Admission policy.AdmitterFactory
	// InternRetain bounds each shard's URL interner: the number of
	// non-resident URL→ID mappings retained before the oldest are
	// recycled (DefaultInternRetain when 0, unbounded when negative).
	// See idTable for the identity trade-off.
	InternRetain int
}

// Cache is the sharded store. All methods are safe for concurrent use.
type Cache struct {
	capacity   int64
	used       atomic.Int64
	evictions  atomic.Int64
	rejects    atomic.Int64
	admRejects atomic.Int64
	onEvict    func(*Entry)
	mask       uint64
	shards     []shard
}

// shard is one lock domain: a map of resident entries and the policy that
// orders them for eviction. used mirrors the shard's share of the global
// byte total so accounting can be cross-checked shard by shard.
type shard struct {
	mu      sync.Mutex
	pol     policy.Policy
	adm     policy.Admitter // nil when admission is disabled
	peek    policy.Peeker   // set iff adm is set
	entries map[string]*Entry
	ids     *idTable
	used    int64
	index   int // position in Cache.shards, for the eviction sweep
}

// New creates a cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d must be positive", cfg.Capacity)
	}
	if cfg.Policy.New == nil {
		cfg.Policy = policy.MustFactory(policy.Spec{Scheme: "lru"})
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		return nil, fmt.Errorf("cache: shard count %d exceeds %d", n, maxShards)
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n)) // round up to a power of two
	}
	c := &Cache{
		capacity: cfg.Capacity,
		onEvict:  cfg.OnEvict,
		mask:     uint64(n - 1),
		shards:   make([]shard, n),
	}
	retain := cfg.InternRetain
	if retain == 0 {
		retain = DefaultInternRetain
	}
	for i := range c.shards {
		c.shards[i] = shard{
			pol:     cfg.Policy.New(),
			entries: make(map[string]*Entry, 64),
			ids:     newIDTable(retain),
			index:   i,
		}
		if cfg.Admission.New != nil {
			sh := &c.shards[i]
			peek, ok := sh.pol.(policy.Peeker)
			if !ok {
				return nil, fmt.Errorf("cache: policy %s does not support admission (no Peek)", cfg.Policy.Name)
			}
			// Each shard judges admission against its own share of the
			// budget; ghost directories keyed by the shard's interner stay
			// coherent because a key always maps to the same shard.
			sh.adm = cfg.Admission.New(cfg.Capacity / int64(n))
			sh.peek = peek
		}
	}
	return c, nil
}

// shardFor maps a key to its home shard.
func (c *Cache) shardFor(key string) *shard {
	return &c.shards[trace.Hash64(key)&c.mask]
}

// Get returns the entry for key, recording a policy hit when resident.
// The entry is returned with a reference acquired on the caller's
// behalf: the caller must Release it when done with the body (see
// Entry's refcount contract). Acquiring under the shard lock is what
// makes evict-while-serving safe — eviction also runs under this lock,
// so the cache's own reference is still live at the moment the reader's
// is taken.
func (c *Cache) Get(key string) (*Entry, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok {
		if sh.adm != nil {
			sh.adm.Touch(e.Doc)
		}
		sh.pol.Hit(e.Doc)
		e.Acquire()
	}
	sh.mu.Unlock()
	return e, ok
}

// GetBytes is Get for a key assembled in a byte buffer. It hashes and
// looks up without converting the key to a string, so a cache hit
// performs no allocation — the zero-allocation serving path's lookup.
func (c *Cache) GetBytes(key []byte) (*Entry, bool) {
	sh := &c.shards[trace.Hash64Bytes(key)&c.mask]
	sh.mu.Lock()
	e, ok := sh.entries[string(key)] // compiler-optimized: no conversion alloc
	if ok {
		if sh.adm != nil {
			sh.adm.Touch(e.Doc)
		}
		sh.pol.Hit(e.Doc)
		e.Acquire()
	}
	sh.mu.Unlock()
	return e, ok
}

// Peek returns the entry for key without touching the replacement policy —
// for introspection and tests, not for serving traffic.
func (c *Cache) Peek(key string) (*Entry, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	sh.mu.Unlock()
	return e, ok
}

// SetOutcome reports how Insert disposed of an entry.
type SetOutcome uint8

const (
	// SetStored means the entry is resident.
	SetStored SetOutcome = iota
	// SetRejectedBudget means the byte budget refused the entry: larger
	// than the whole budget, or the budget is held by bytes no shard can
	// free. Counted by Rejects.
	SetRejectedBudget
	// SetRejectedAdmission means the admission filter refused the entry.
	// Counted by AdmissionRejects.
	SetRejectedAdmission
)

// Stored reports whether the entry became resident.
func (o SetOutcome) Stored() bool { return o == SetStored }

// Set inserts an entry under key, evicting as needed to respect the byte
// budget. It reports false — and caches nothing — when the object cannot
// be stored; see Insert for the distinguishable reasons. A false return
// is not an error; the object is simply served uncached.
func (c *Cache) Set(key string, e *Entry) bool {
	return c.Insert(key, e).Stored()
}

// Insert is Set with a distinguishable outcome: stored, refused by the
// byte budget, or refused by the admission filter.
//
// e.Doc.Key must equal key; Insert assigns e.Doc.ID from the shard's
// interner, so a URL keeps one stable dense ID across evict/refetch
// cycles — the keying contract policies such as GD* rely on.
func (c *Cache) Insert(key string, e *Entry) SetOutcome {
	size := e.Doc.Size
	if size > c.capacity {
		c.rejects.Add(1)
		return SetRejectedBudget
	}

	// Drop any previous version first so its bytes are free for the
	// reservation below. A concurrent Set on the same key can interleave
	// here; the insert phase resolves that by replacing whatever version
	// it finds (last writer wins).
	home := c.shardFor(key)
	c.removeFrom(home, key)

	if home.adm != nil && !c.admit(home, key, e) {
		c.admRejects.Add(1)
		return SetRejectedAdmission
	}

	if !c.reserve(size, home) {
		if home.adm != nil {
			// admit pinned the candidate's ID; retire it again — unless a
			// concurrent insert made the key resident, in which case the
			// pin belongs to that entry.
			home.mu.Lock()
			if _, resident := home.entries[key]; !resident {
				home.ids.unpin(e.Doc.ID)
			}
			home.mu.Unlock()
		}
		c.rejects.Add(1)
		return SetRejectedBudget
	}

	home.mu.Lock()
	if old, ok := home.entries[key]; ok {
		home.pol.Remove(old.Doc)
		home.used -= old.Doc.Size
		c.used.Add(-old.Doc.Size)
		// The key stays pinned (the new version inherits the ID); only the
		// cache's reference on the superseded body is dropped.
		old.Release()
	}
	e.Doc.ID = home.ids.pin(key)
	// The cache's own reference: held while resident, released after the
	// entry leaves (eviction, removal, replacement).
	e.Acquire()
	home.entries[key] = e
	home.used += size
	home.pol.Insert(e.Doc)
	if home.adm != nil {
		home.adm.Inserted(e.Doc)
	}
	home.mu.Unlock()
	return SetStored
}

// admit runs the home shard's admission filter for a candidate entry.
// The candidate is judged against the home shard's own prospective
// victim — the per-shard approximation of the simulator's global
// peek-before-evict — and only when the global budget is actually full;
// while space remains, admission is unconditional. The decision point is
// advisory: a concurrent insert can consume the budget between this
// check and the reservation, in which case an admitted entry may still
// be evicting from other shards. That race only ever skips the filter
// in the admit direction, never rejects spuriously.
func (c *Cache) admit(home *shard, key string, e *Entry) bool {
	home.mu.Lock()
	defer home.mu.Unlock()
	e.Doc.ID = home.ids.pin(key)
	home.adm.Touch(e.Doc)
	admitted := true
	if c.used.Load()+e.Doc.Size > c.capacity {
		if victim, ok := home.peek.Peek(); ok {
			admitted = home.adm.Admit(e.Doc, victim)
		}
		// else: the home shard has nothing to evict; the bytes will come
		// from other shards, whose victims this shard's filter cannot
		// judge — admit unconditionally.
	}
	if !admitted {
		// Retire the candidate's pin — unless the key is resident (a
		// concurrent insert won the race), in which case the pin belongs
		// to the resident entry.
		if _, resident := home.entries[key]; !resident {
			home.ids.unpin(e.Doc.ID)
		}
	}
	return admitted
}

// reserve claims size bytes of the global budget, evicting until the
// claim fits. The compare-and-swap is the no-overshoot guarantee: the
// budget is only ever raised by a CAS that proves the new total is within
// capacity, so concurrent inserts cannot jointly overshoot. It reports
// false when the budget cannot be freed (no shard has a victim left).
func (c *Cache) reserve(size int64, home *shard) bool {
	for {
		cur := c.used.Load()
		if cur+size <= c.capacity {
			if c.used.CompareAndSwap(cur, cur+size) {
				return true
			}
			continue // lost the race; re-read the budget
		}
		if !c.evictOne(home) {
			return false
		}
	}
}

// evictOne frees one victim, asking the home shard's policy first and then
// sweeping the other shards in index order. Only one shard lock is held at
// a time, so concurrent inserts stealing from each other's shards cannot
// deadlock. It reports false when every shard is empty.
func (c *Cache) evictOne(home *shard) bool {
	if home.evictVictim(c) {
		return true
	}
	for i := 1; i < len(c.shards); i++ {
		if c.shards[(home.index+i)&int(c.mask)].evictVictim(c) {
			return true
		}
	}
	return false
}

// evictVictim asks the shard's policy for one victim and releases its
// bytes. It reports false when the policy tracks nothing.
func (sh *shard) evictVictim(c *Cache) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	victim, ok := sh.pol.Evict()
	if !ok {
		return false
	}
	e, ok := sh.entries[victim.Key]
	if !ok || e.Doc != victim {
		// The policy gave up a document the shard no longer maps — a
		// contract violation (policies are exercised against
		// policy.Checked in their own tests). Count nothing; the entry
		// map, not the policy, is the accounting ground truth.
		return true
	}
	delete(sh.entries, victim.Key)
	sh.used -= victim.Size
	c.used.Add(-victim.Size)
	c.evictions.Add(1)
	sh.ids.unpin(victim.ID)
	if sh.adm != nil {
		sh.adm.Evicted(victim)
	}
	if c.onEvict != nil {
		c.onEvict(e)
	}
	// Drop the cache's reference last, after the OnEvict observer has run:
	// readers that acquired under this shard's lock keep the body alive,
	// and the pooled buffer returns only when the final one releases.
	e.Release()
	return true
}

// Remove deletes the entry under key, reporting whether it was resident.
func (c *Cache) Remove(key string) bool {
	return c.removeFrom(c.shardFor(key), key)
}

func (c *Cache) removeFrom(sh *shard, key string) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return false
	}
	sh.pol.Remove(e.Doc)
	delete(sh.entries, key)
	sh.used -= e.Doc.Size
	c.used.Add(-e.Doc.Size)
	sh.ids.unpin(e.Doc.ID)
	e.Release()
	return true
}

// Used returns the resident byte total (including bytes reserved by
// in-flight inserts).
func (c *Cache) Used() int64 { return c.used.Load() }

// Capacity returns the configured byte budget.
func (c *Cache) Capacity() int64 { return c.capacity }

// Evictions returns the number of replacement victims so far.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Rejects returns the number of Set calls refused for want of budget.
func (c *Cache) Rejects() int64 { return c.rejects.Load() }

// AdmissionRejects returns the number of Set calls refused by the
// admission filter.
func (c *Cache) AdmissionRejects() int64 { return c.admRejects.Load() }

// AdmissionCounts aggregates the per-shard admitters' decision counters.
// All zeros when admission is disabled.
func (c *Cache) AdmissionCounts() policy.AdmissionCounts {
	var total policy.AdmissionCounts
	for i := range c.shards {
		sh := &c.shards[i]
		if sh.adm == nil {
			continue
		}
		sh.mu.Lock()
		total.Add(sh.adm.Counts())
		sh.mu.Unlock()
	}
	return total
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// InternedKeys returns the number of live URL→ID mappings across all
// shard interners (resident keys plus the retained non-resident tail) —
// the quantity the bounded-interner tests pin.
func (c *Cache) InternedKeys() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ids.len()
		sh.mu.Unlock()
	}
	return n
}

// Len returns the number of resident entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Each calls fn for every resident entry, one shard at a time (the
// snapshot is per-shard consistent, not globally atomic). fn must not call
// back into the cache.
func (c *Cache) Each(fn func(key string, e *Entry)) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			fn(k, e)
		}
		sh.mu.Unlock()
	}
}

// ShardUsed returns each shard's resident byte count — the per-shard view
// the accounting invariant (sum == Used, quiescent) is checked against.
func (c *Cache) ShardUsed() []int64 {
	out := make([]int64, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out[i] = sh.used
		sh.mu.Unlock()
	}
	return out
}
