package cache

// idTable is the shard's bounded URL→ID interner. The unbounded
// trace.Interner it replaces retained every URL ever inserted — a slow
// memory leak under unique-URL traffic, where the cache's bytes are
// bounded by capacity but the interner grew one map entry per URL
// forever.
//
// The table keeps the keying contract policies rely on — a URL holds one
// stable dense ID for as long as it is resident, and keeps that ID across
// evict/refetch cycles while its mapping survives — but bounds the
// non-resident tail: an ID whose URL left the cache is "retired", and
// once more than retain retired mappings accumulate, the oldest are
// recycled (mapping dropped, ID reused for a new URL) in FIFO order.
// One-shot URLs therefore cost an interner slot only until they age out
// of the retire window instead of permanently.
//
// Recycling trades a bounded amount of identity aliasing for bounded
// memory: ID-keyed state that outlives residency (GD*'s inter-reference
// estimator, admission ghost directories) can see a recycled ID as a
// returning document. The window is sized so that only URLs evicted long
// ago — beyond what those structures meaningfully remember — get
// recycled; retain < 0 disables recycling entirely (the pre-bounded
// behavior).
//
// All methods must be called with the owning shard's lock held.
type idTable struct {
	ids   map[string]int32
	keys  []string
	state []uint8  // per-ID: idPinned, idRetired or idFree
	seq   []uint32 // per-ID retire generation, invalidates stale ring slots
	free  []int32  // recycled IDs ready for reuse

	ring    []ringSlot // FIFO of retired IDs, oldest at head
	head    int
	retired int // live (non-stale) retired entries in the ring
	retain  int // recycle beyond this many retired entries; <0 = never
}

type ringSlot struct {
	id  int32
	seq uint32
}

const (
	idFree uint8 = iota
	idPinned
	idRetired
)

// DefaultInternRetain is the per-shard retired-mapping budget when
// Config.InternRetain is zero. At ~100 bytes per retained mapping this
// bounds the non-resident interner tail to a few hundred KiB per shard.
const DefaultInternRetain = 4096

func newIDTable(retain int) *idTable {
	return &idTable{ids: make(map[string]int32, 64), retain: retain}
}

// pin interns key and marks its ID resident, reviving a retired mapping
// or reusing a recycled ID when one is free. Pinning an already-pinned
// key is a no-op returning the same ID.
func (t *idTable) pin(key string) int32 {
	if id, ok := t.ids[key]; ok {
		if t.state[id] == idRetired {
			t.state[id] = idPinned
			t.retired--
		}
		return id
	}
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		t.keys[id] = key
		t.ids[key] = id
		t.state[id] = idPinned
		return id
	}
	id := int32(len(t.keys))
	t.keys = append(t.keys, key)
	t.state = append(t.state, idPinned)
	t.seq = append(t.seq, 0)
	t.ids[key] = id
	return id
}

// unpin marks an ID non-resident and recycles the oldest retired
// mappings beyond the retain budget. Unpinning an already-retired or
// free ID is a no-op.
func (t *idTable) unpin(id int32) {
	if t.retain < 0 || int(id) >= len(t.state) || t.state[id] != idPinned {
		return
	}
	t.state[id] = idRetired
	t.seq[id]++
	t.ring = append(t.ring, ringSlot{id: id, seq: t.seq[id]})
	t.retired++
	for t.retired > t.retain && t.head < len(t.ring) {
		slot := t.ring[t.head]
		t.head++
		// A slot is stale when its ID was re-pinned (and possibly
		// re-retired with a newer seq) since it was queued; skip it — the
		// live generation has its own slot further down the ring.
		if t.state[slot.id] == idRetired && t.seq[slot.id] == slot.seq {
			delete(t.ids, t.keys[slot.id])
			t.keys[slot.id] = ""
			t.state[slot.id] = idFree
			t.free = append(t.free, slot.id)
			t.retired--
		}
	}
	// Compact the ring once the consumed prefix dominates, so the queue's
	// memory stays proportional to the live retired population.
	if t.head > len(t.ring)/2 && t.head > 64 {
		n := copy(t.ring, t.ring[t.head:])
		t.ring = t.ring[:n]
		t.head = 0
	}
}

// len returns the number of live URL→ID mappings (pinned + retired).
func (t *idTable) len() int { return len(t.ids) }
