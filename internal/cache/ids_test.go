package cache

import (
	"fmt"
	"testing"
	"time"

	"webcachesim/internal/policy"
)

// TestInternerBounded is the regression test for the unbounded-interner
// leak: a flood of unique one-shot URLs through a small cache must not
// grow the interner past residency plus the configured retain window.
func TestInternerBounded(t *testing.T) {
	const retain = 32
	c, err := New(Config{Capacity: 10 << 10, Shards: 1, InternRetain: retain})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("http://example.com/unique/%d", i)
		doc := &policy.Doc{Key: key, Size: 1024}
		c.Set(key, NewEntry(doc, make([]byte, 1024), "", 200, time.Time{}))
	}
	// Bound: resident entries + retain window + the one-past overshoot the
	// recycling loop allows transiently.
	limit := c.Len() + retain + 1
	if got := c.InternedKeys(); got > limit {
		t.Fatalf("interner holds %d mappings after %d unique inserts; want <= %d", got, n, limit)
	}
}

// TestInternerUnboundedWhenNegative pins the opt-out: retain < 0 keeps
// every mapping forever (the pre-bounded behavior some ID-keyed
// estimators may want).
func TestInternerUnboundedWhenNegative(t *testing.T) {
	c, err := New(Config{Capacity: 10 << 10, Shards: 1, InternRetain: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("http://example.com/u/%d", i)
		doc := &policy.Doc{Key: key, Size: 1024}
		c.Set(key, NewEntry(doc, make([]byte, 1024), "", 200, time.Time{}))
	}
	if got := c.InternedKeys(); got != n {
		t.Fatalf("unbounded interner holds %d mappings; want %d", got, n)
	}
}

// TestInternerStableIDWithinWindow checks the keying contract the
// policies rely on: a URL evicted and refetched while its mapping is
// still inside the retain window gets the same dense ID back.
func TestInternerStableIDWithinWindow(t *testing.T) {
	c, err := New(Config{Capacity: 2048, Shards: 1, InternRetain: 16})
	if err != nil {
		t.Fatal(err)
	}
	insert := func(key string) int32 {
		doc := &policy.Doc{Key: key, Size: 1024}
		if !c.Set(key, NewEntry(doc, make([]byte, 1024), "", 200, time.Time{})) {
			t.Fatalf("insert %q refused", key)
		}
		return doc.ID
	}
	id0 := insert("http://example.com/a")
	// Evict /a by filling the 2048-byte budget with two newer objects.
	insert("http://example.com/b")
	insert("http://example.com/c")
	if _, ok := c.Peek("http://example.com/a"); ok {
		t.Fatal("expected /a to be evicted")
	}
	if id := insert("http://example.com/a"); id != id0 {
		t.Fatalf("refetched /a got ID %d; want the retained ID %d", id, id0)
	}
}

// TestIDTableRecycling exercises the pin/unpin state machine directly:
// retired IDs past the retain budget are recycled in FIFO order, revived
// pins invalidate their stale ring slots, and recycled IDs are reused.
func TestIDTableRecycling(t *testing.T) {
	tb := newIDTable(2)
	ids := make([]int32, 5)
	for i := range ids {
		ids[i] = tb.pin(fmt.Sprintf("k%d", i))
	}
	if tb.len() != 5 {
		t.Fatalf("len = %d; want 5", tb.len())
	}
	// Retire k0..k2: k0 falls off the window (retain=2), k1/k2 stay.
	tb.unpin(ids[0])
	tb.unpin(ids[1])
	tb.unpin(ids[2])
	if tb.len() != 4 {
		t.Fatalf("after retiring 3 with retain=2: len = %d; want 4", tb.len())
	}
	if _, ok := tb.ids["k0"]; ok {
		t.Fatal("k0 should have been recycled (oldest retired)")
	}
	// Revive k1, then retire k3 and k4: the stale k1 ring slot must be
	// skipped, so the recycle order is k2 then k3.
	if got := tb.pin("k1"); got != ids[1] {
		t.Fatalf("reviving k1 returned ID %d; want %d", got, ids[1])
	}
	tb.unpin(ids[3])
	tb.unpin(ids[4])
	if _, ok := tb.ids["k2"]; ok {
		t.Fatal("k2 should have been recycled")
	}
	if _, ok := tb.ids["k1"]; !ok {
		t.Fatal("revived k1 must survive recycling (its ring slot is stale)")
	}
	// A new key reuses a recycled dense ID instead of growing the table.
	newID := tb.pin("k5")
	reused := false
	for _, old := range []int32{ids[0], ids[2], ids[3]} {
		if newID == old {
			reused = true
		}
	}
	if !reused {
		t.Fatalf("new key got ID %d; want one of the recycled IDs", newID)
	}
	// Unpinning a retired or free ID is a no-op, not a corruption.
	tb.unpin(ids[3])
	tb.unpin(newID)
	tb.unpin(newID)
}
