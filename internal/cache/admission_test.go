package cache

import (
	"fmt"
	"testing"

	"webcachesim/internal/admission"
	"webcachesim/internal/policy"
)

// rejectContested admits only into free space: any insert that would
// displace a victim is refused.
type rejectContested struct {
	counts policy.AdmissionCounts
}

func (r *rejectContested) Name() string      { return "reject-contested" }
func (r *rejectContested) Touch(*policy.Doc) { r.counts.Touches++ }
func (r *rejectContested) Admit(candidate, victim *policy.Doc) bool {
	if victim == nil {
		return true
	}
	r.counts.Rejected++
	return false
}
func (r *rejectContested) Inserted(*policy.Doc)           { r.counts.Admitted++ }
func (r *rejectContested) Evicted(*policy.Doc)            {}
func (r *rejectContested) Counts() policy.AdmissionCounts { return r.counts }

func rejectContestedFactory() policy.AdmitterFactory {
	return policy.AdmitterFactory{
		Name: "reject-contested",
		New:  func(int64) policy.Admitter { return &rejectContested{} },
	}
}

func TestInsertOutcomes(t *testing.T) {
	c := mustNew(t, Config{Capacity: 1000, Shards: 1, Admission: rejectContestedFactory()})
	if got := c.Insert("a", ent("a", 600)); got != SetStored {
		t.Fatalf("Insert(a) = %v, want SetStored", got)
	}
	// b needs an eviction; the filter refuses it.
	if got := c.Insert("b", ent("b", 600)); got != SetRejectedAdmission {
		t.Fatalf("Insert(b) = %v, want SetRejectedAdmission", got)
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("rejected insert must leave the resident entry in place")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("rejected entry must not be resident")
	}
	// An entry bigger than the whole cache is a budget rejection, not an
	// admission rejection.
	if got := c.Insert("huge", ent("huge", 2000)); got != SetRejectedBudget {
		t.Fatalf("Insert(huge) = %v, want SetRejectedBudget", got)
	}
	if got := c.AdmissionRejects(); got != 1 {
		t.Errorf("AdmissionRejects = %d, want 1", got)
	}
	counts := c.AdmissionCounts()
	if counts.Rejected != 1 || counts.Admitted != 1 {
		t.Errorf("AdmissionCounts = %+v, want Rejected=1 Admitted=1", counts)
	}
}

func TestSetWrapsInsert(t *testing.T) {
	c := mustNew(t, Config{Capacity: 1000, Shards: 1, Admission: rejectContestedFactory()})
	if !c.Set("a", ent("a", 600)) {
		t.Fatal("Set(a) should store into free space")
	}
	if c.Set("b", ent("b", 600)) {
		t.Fatal("Set(b) should report the admission rejection as false")
	}
}

func TestAdmissionTinyLFUAcrossShards(t *testing.T) {
	c := mustNew(t, Config{
		Capacity:  4000,
		Shards:    4,
		Admission: admission.MustSpec("tinylfu"),
	})
	// A popular key per shard-ish neighborhood plus one-hit wonders.
	for i := 0; i < 50; i++ {
		for j := 0; j < 4; j++ {
			key := fmt.Sprintf("hot-%d", j)
			if _, ok := c.Get(key); !ok {
				c.Insert(key, ent(key, 400))
			}
		}
		once := fmt.Sprintf("once-%d", i)
		c.Insert(once, ent(once, 900))
	}
	for j := 0; j < 4; j++ {
		if _, ok := c.Get(fmt.Sprintf("hot-%d", j)); !ok {
			t.Errorf("hot-%d washed out despite the frequency filter", j)
		}
	}
	counts := c.AdmissionCounts()
	if counts.Rejected == 0 {
		t.Error("TinyLFU should have rejected some one-hit wonders")
	}
	if counts.Touches == 0 || counts.Admitted == 0 {
		t.Errorf("per-shard counters should aggregate: %+v", counts)
	}
	if c.AdmissionRejects() == 0 {
		t.Error("AdmissionRejects counter should mirror rejected Inserts")
	}
}

func TestNoAdmissionCountsZero(t *testing.T) {
	c := mustNew(t, Config{Capacity: 1000, Shards: 2})
	c.Insert("a", ent("a", 600))
	c.Insert("b", ent("b", 600))
	if got := c.AdmissionRejects(); got != 0 {
		t.Errorf("AdmissionRejects = %d without a filter, want 0", got)
	}
	if counts := c.AdmissionCounts(); counts != (policy.AdmissionCounts{}) {
		t.Errorf("AdmissionCounts = %+v without a filter, want zero", counts)
	}
}
