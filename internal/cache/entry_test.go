package cache

import (
	"fmt"
	"testing"
	"time"

	"webcachesim/internal/policy"
	"webcachesim/internal/pool"
)

// TestPooledEntryReleasesBufferOnLastRef pins the core refcount contract:
// the pooled buffer goes back to its pool only when the final reference —
// regardless of who holds it — is dropped.
func TestPooledEntryReleasesBufferOnLastRef(t *testing.T) {
	p := pool.New()
	buf := p.Get(1024)
	copy(buf.B, "hello")
	doc := &policy.Doc{Key: "k", Size: 5}
	e := NewPooledEntry(doc, buf, 5, "text/plain", 200, time.Time{})

	if string(e.Body) != "hello" {
		t.Fatalf("Body = %q; want %q", e.Body, "hello")
	}
	e.Acquire() // a second holder
	e.Release() // creator done
	if got := p.Stats().Outstanding(); got != 1 {
		t.Fatalf("buffer returned while a reference was live (outstanding = %d)", got)
	}
	if string(e.Body) != "hello" {
		t.Fatalf("Body corrupted while referenced: %q", e.Body)
	}
	e.Release() // last holder done
	if got := p.Stats().Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after last release; want 0", got)
	}
	if e.Body != nil {
		t.Fatal("Body must be nil after the last release")
	}
}

// TestCacheLifecycleReleasesPooledBodies drives pooled entries through
// insert, replacement, eviction, and removal, and checks every pooled
// buffer is back in the pool once the cache lets go and the creator
// references are dropped.
func TestCacheLifecycleReleasesPooledBodies(t *testing.T) {
	p := pool.New()
	c, err := New(Config{Capacity: 4096, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	insert := func(key string) {
		buf := p.Get(1024)
		doc := &policy.Doc{Key: key, Size: 1024}
		e := NewPooledEntry(doc, buf, 1024, "", 200, time.Time{})
		c.Set(key, e)
		e.Release() // creator's reference; the cache holds its own
	}
	insert("a")
	insert("a") // replacement releases the superseded body
	insert("b")
	insert("c")
	insert("d")
	insert("e") // capacity 4 objects: forces an eviction
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d; want 4", got)
	}
	if got := p.Stats().Outstanding(); got != 4 {
		t.Fatalf("outstanding = %d with 4 resident entries; want 4", got)
	}
	// A reader holds the body across an eviction of its entry.
	e, ok := c.Get("b")
	if !ok {
		t.Fatal("want /b resident")
	}
	c.Remove("b")
	if e.Body == nil {
		t.Fatal("reader's body recycled while still referenced")
	}
	e.Release()
	for _, k := range []string{"a", "c", "d", "e"} {
		c.Remove(k)
	}
	if got := p.Stats().Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after draining the cache; want 0", got)
	}
}

// TestGetBytesMatchesGet pins that the byte-key lookup is the same
// lookup: same entry, same policy accounting, reference acquired.
func TestGetBytesMatchesGet(t *testing.T) {
	c, err := New(Config{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("http://example.com/doc/%d", i)
		doc := &policy.Doc{Key: key, Size: 64}
		c.Set(key, NewEntry(doc, []byte(key), "", 200, time.Time{}))
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("http://example.com/doc/%d", i)
		e1, ok1 := c.Get(key)
		e2, ok2 := c.GetBytes([]byte(key))
		if !ok1 || !ok2 || e1 != e2 {
			t.Fatalf("GetBytes(%q) = (%p,%v); Get = (%p,%v)", key, e2, ok2, e1, ok1)
		}
		if e1.Refs() < 3 { // cache ref + the two just acquired
			t.Fatalf("refs = %d; want >= 3", e1.Refs())
		}
		e1.Release()
		e2.Release()
	}
	if _, ok := c.GetBytes([]byte("http://example.com/missing")); ok {
		t.Fatal("GetBytes hit on an absent key")
	}
}

// TestStructLiteralEntryStaysLegacySafe keeps the compatibility promise:
// entries built without the constructors carry no pooled buffer, so
// Acquire/Release are pure accounting and the body survives release.
func TestStructLiteralEntryStaysLegacySafe(t *testing.T) {
	c, err := New(Config{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{Doc: &policy.Doc{Key: "legacy", Size: 3}, Body: []byte("abc")}
	c.Set("legacy", e)
	got, ok := c.Get("legacy")
	if !ok {
		t.Fatal("want resident")
	}
	c.Remove("legacy")
	got.Release()
	if string(e.Body) != "abc" {
		t.Fatalf("GC-owned body must survive release; got %q", e.Body)
	}
	ct, length := got.HeaderSlices()
	if ct != nil || length != nil {
		t.Fatalf("struct-literal entry pre-resolved headers = (%v, %v); want nil", ct, length)
	}
}
