package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"webcachesim/internal/policy"
)

// TestPropertyAccountingMatchesOracle drives randomized
// insert/hit/remove/replace sequences against caches of several shard
// counts and checks, after every operation, that the cache's accounting
// agrees with a map-based model:
//
//   - residency: a key is Peek-able iff the model holds it
//   - bytes: sum(model sizes) == Used() == sum(ShardUsed())
//   - budget: Used() never exceeds capacity
//
// The model is maintained from the cache's own observable events (Set's
// admission result, the OnEvict stream, Remove) — which is exactly what
// makes it an oracle for the bookkeeping: any double-free, leak, or
// missed eviction desynchronizes the two.
func TestPropertyAccountingMatchesOracle(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for _, scheme := range []string{"lru", "size", "gds"} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, scheme), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(shards)*1000 + int64(len(scheme))))
				model := map[string]int64{}
				spec, err := policy.ParseSpec(scheme)
				if err != nil {
					t.Fatal(err)
				}
				factory, err := policy.NewFactory(spec)
				if err != nil {
					t.Fatal(err)
				}
				const capacity = 4000
				c := mustNew(t, Config{
					Capacity: capacity,
					Shards:   shards,
					Policy:   factory,
					OnEvict: func(e *Entry) {
						if _, ok := model[e.Doc.Key]; !ok {
							t.Errorf("evicted %q not in model", e.Doc.Key)
						}
						delete(model, e.Doc.Key)
					},
				})

				keys := make([]string, 120)
				for i := range keys {
					keys[i] = fmt.Sprintf("http://x/doc%d", i)
				}
				for op := 0; op < 5000; op++ {
					k := keys[rng.Intn(len(keys))]
					switch r := rng.Intn(100); {
					case r < 55: // insert / replace
						size := int64(1 + rng.Intn(capacity/5))
						if c.Set(k, ent(k, size)) {
							model[k] = size
						} else {
							// A rejected Set still removed any previous
							// version before it failed to reserve.
							delete(model, k)
						}
					case r < 85: // lookup
						_, ok := c.Get(k)
						if _, want := model[k]; ok != want {
							t.Fatalf("op %d: Get(%q) resident=%v, model=%v", op, k, ok, want)
						}
					default: // explicit invalidation
						removed := c.Remove(k)
						if _, want := model[k]; removed != want {
							t.Fatalf("op %d: Remove(%q)=%v, model=%v", op, k, removed, want)
						}
						delete(model, k)
					}

					var modelBytes int64
					for _, s := range model {
						modelBytes += s
					}
					var shardSum int64
					for _, u := range c.ShardUsed() {
						shardSum += u
					}
					used := c.Used()
					if used > capacity {
						t.Fatalf("op %d: used %d exceeds capacity %d", op, used, capacity)
					}
					if modelBytes != used || shardSum != used {
						t.Fatalf("op %d: model=%d shards=%d used=%d diverged", op, modelBytes, shardSum, used)
					}
				}

				// Final residency cross-check, key by key.
				for _, k := range keys {
					_, resident := c.Peek(k)
					_, inModel := model[k]
					if resident != inModel {
						t.Errorf("final: %q resident=%v model=%v", k, resident, inModel)
					}
				}
			})
		}
	}
}

// TestPropertyConcurrentBudgetNeverOvershoots hammers one cache from many
// goroutines with random inserts, hits and removes while a sampler
// continuously asserts the byte budget. After the run the per-shard bytes
// must again reconcile exactly with the global counter and with a walk of
// the resident entries.
func TestPropertyConcurrentBudgetNeverOvershoots(t *testing.T) {
	const (
		capacity   = 64 << 10
		goroutines = 8
		opsPerG    = 4000
	)
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := mustNew(t, Config{Capacity: capacity, Shards: shards})

			var overshoot atomic.Int64
			stop := make(chan struct{})
			var samplerWG sync.WaitGroup
			samplerWG.Add(1)
			go func() {
				defer samplerWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
						if u := c.Used(); u > capacity {
							overshoot.Store(u)
							return
						}
					}
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g) + 42))
					for i := 0; i < opsPerG; i++ {
						k := fmt.Sprintf("http://x/doc%d", rng.Intn(300))
						switch r := rng.Intn(100); {
						case r < 50:
							c.Set(k, ent(k, int64(1+rng.Intn(capacity/8))))
						case r < 90:
							c.Get(k)
						default:
							c.Remove(k)
						}
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			samplerWG.Wait()

			if o := overshoot.Load(); o != 0 {
				t.Fatalf("budget overshoot observed: used %d > capacity %d", o, capacity)
			}
			var shardSum int64
			for _, u := range c.ShardUsed() {
				shardSum += u
			}
			var walkSum int64
			c.Each(func(_ string, e *Entry) { walkSum += e.Doc.Size })
			if used := c.Used(); shardSum != used || walkSum != used || used > capacity {
				t.Fatalf("post-run accounting diverged: shards=%d walk=%d used=%d cap=%d",
					shardSum, walkSum, used, capacity)
			}
		})
	}
}
