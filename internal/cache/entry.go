package cache

import (
	"strconv"
	"sync/atomic"
	"time"

	"webcachesim/internal/policy"
	"webcachesim/internal/pool"
)

// Entry is one cached object. Body and the header fields are immutable
// while any reference is held — concurrent readers serve them without
// copying. Doc carries the policy-facing identity (key, dense ID, size,
// class).
//
// # Reference counting
//
// An entry's body may live in a pooled buffer (internal/pool), and pooled
// memory must not return to the pool while any reader is still serving
// it. The contract:
//
//   - NewEntry/NewPooledEntry return the entry holding ONE reference — the
//     creator's (in the proxy, the fetch result that will be handed to the
//     miss leader).
//   - Insert acquires its own reference when the entry becomes resident,
//     and the cache releases it when the entry leaves (eviction, Remove,
//     replacement) — after the OnEvict callback has run.
//   - Get/GetBytes return the entry already acquired on the caller's
//     behalf; the caller must Release exactly once when done with Body.
//   - When the count reaches zero the pooled buffer (if any) returns to
//     its pool and Body becomes nil; the entry must not be used again.
//
// Entries built as struct literals (tests, embedders) start at zero
// references with no pooled buffer; for them Acquire/Release are pure
// accounting and the garbage collector owns the body, so legacy callers
// that never Release stay correct — they just cannot carry pooled bodies.
type Entry struct {
	Doc         *policy.Doc
	Body        []byte
	ContentType string
	Status      int
	// Expires, when non-zero, is the instant the entry becomes stale.
	// The cache itself does not expire entries — a stale entry stays
	// resident until evicted — the caller decides what staleness means
	// (the proxy revalidates, and serves stale only when the origin is
	// down).
	Expires time.Time

	// refs counts outstanding references; managed only via
	// Acquire/AcquireN/Release.
	refs atomic.Int32
	// buf is the pooled buffer backing Body; nil when the body is
	// GC-managed (struct-literal entries, pool-bypass allocations keep a
	// no-op handle).
	buf *pool.Buf
	// ctHdr/lenHdr are the pre-resolved header value slices the proxy's
	// zero-allocation hit path assigns directly into the response header
	// map. They are built once at construction and shared read-only by
	// every response that serves this entry.
	ctHdr  []string
	lenHdr []string
}

// NewEntry builds a refcounted entry over a GC-managed body. The returned
// entry holds the creator's reference.
func NewEntry(doc *policy.Doc, body []byte, contentType string, status int, expires time.Time) *Entry {
	e := &Entry{
		Doc:         doc,
		Body:        body,
		ContentType: contentType,
		Status:      status,
		Expires:     expires,
	}
	e.finishInit()
	return e
}

// NewPooledEntry builds a refcounted entry whose body is the first n
// bytes of a pooled buffer. The entry takes ownership of buf: it is
// released back to its pool when the last reference is dropped. The
// returned entry holds the creator's reference.
func NewPooledEntry(doc *policy.Doc, buf *pool.Buf, n int, contentType string, status int, expires time.Time) *Entry {
	e := &Entry{
		Doc:         doc,
		Body:        buf.B[:n:n],
		ContentType: contentType,
		Status:      status,
		Expires:     expires,
		buf:         buf,
	}
	e.finishInit()
	return e
}

// finishInit sets the creator reference and pre-resolves the header value
// slices served on the hit path.
func (e *Entry) finishInit() {
	e.refs.Store(1)
	if e.ContentType != "" {
		e.ctHdr = []string{e.ContentType}
	}
	e.lenHdr = []string{strconv.Itoa(len(e.Body))}
}

// Acquire takes one additional reference. The caller must already hold a
// reference (or the shard lock that guarantees the cache's reference is
// live); acquiring a dead entry is a bug.
func (e *Entry) Acquire() { e.refs.Add(1) }

// AcquireN takes n additional references in one step — the miss leader
// uses it to grant one reference per coalesced consumer before any of
// them can run.
func (e *Entry) AcquireN(n int32) {
	if n > 0 {
		e.refs.Add(n)
	}
}

// Release drops one reference. When the last reference goes, the pooled
// buffer (if any) returns to its pool and Body is cleared so a
// use-after-release fails fast instead of reading recycled bytes.
func (e *Entry) Release() {
	if e.refs.Add(-1) != 0 {
		return
	}
	if b := e.buf; b != nil {
		// The final atomic decrement orders these writes after every other
		// holder's reads: nobody can still be looking at Body.
		e.buf = nil
		e.Body = nil
		b.Release()
	}
}

// Refs returns the current reference count — for tests and accounting
// assertions, not for lifetime decisions.
func (e *Entry) Refs() int32 { return e.refs.Load() }

// HeaderSlices returns the pre-resolved Content-Type and Content-Length
// header value slices (ct is nil when the entry has no content type).
// Callers assign them directly into an http.Header map; they are shared
// and must be treated as read-only. Both are nil on struct-literal
// entries that skipped the constructors.
func (e *Entry) HeaderSlices() (ct, length []string) { return e.ctHdr, e.lenHdr }
