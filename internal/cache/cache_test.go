package cache

import (
	"fmt"
	"testing"

	"webcachesim/internal/policy"
)

// ent builds an entry of the given size keyed by key.
func ent(key string, size int64) *Entry {
	return &Entry{Doc: &policy.Doc{Key: key, Size: size}, Body: make([]byte, size)}
}

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(Config{Capacity: 100, Shards: maxShards + 1}); err == nil {
		t.Error("absurd shard count accepted")
	}
	c := mustNew(t, Config{Capacity: 100})
	if c.Shards() != DefaultShards {
		t.Errorf("default shards = %d, want %d", c.Shards(), DefaultShards)
	}
	c = mustNew(t, Config{Capacity: 100, Shards: 3})
	if c.Shards() != 4 {
		t.Errorf("shards(3) rounded to %d, want 4", c.Shards())
	}
	c = mustNew(t, Config{Capacity: 100, Shards: 1})
	if c.Shards() != 1 {
		t.Errorf("shards(1) = %d, want 1", c.Shards())
	}
}

func TestSetGetRemove(t *testing.T) {
	c := mustNew(t, Config{Capacity: 1000, Shards: 4})
	if !c.Set("a", ent("a", 100)) {
		t.Fatal("set a rejected")
	}
	e, ok := c.Get("a")
	if !ok || string(e.Body) != string(make([]byte, 100)) || e.Doc.Size != 100 {
		t.Fatalf("get a = %v, %v", e, ok)
	}
	if c.Used() != 100 || c.Len() != 1 {
		t.Errorf("used=%d len=%d, want 100, 1", c.Used(), c.Len())
	}
	if !c.Remove("a") {
		t.Error("remove a reported not resident")
	}
	if c.Remove("a") {
		t.Error("second remove reported resident")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("a still resident after remove")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Errorf("used=%d len=%d after remove, want 0, 0", c.Used(), c.Len())
	}
}

// TestExactLRUWithOneShard: a single shard preserves the policy's exact
// eviction order — the configuration the paper-fidelity tests rely on.
func TestExactLRUWithOneShard(t *testing.T) {
	c := mustNew(t, Config{Capacity: 200, Shards: 1})
	c.Set("a", ent("a", 100))
	c.Set("b", ent("b", 100))
	c.Get("a") // a is now more recent than b
	c.Set("c", ent("c", 100))
	if _, ok := c.Peek("b"); ok {
		t.Error("LRU victim b still resident")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Error("recently hit a was evicted")
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions())
	}
}

// TestReplaceSameKey: re-setting a key must not double-count its bytes.
func TestReplaceSameKey(t *testing.T) {
	c := mustNew(t, Config{Capacity: 1000, Shards: 4})
	c.Set("a", ent("a", 100))
	c.Set("a", ent("a", 300))
	if c.Used() != 300 || c.Len() != 1 {
		t.Errorf("used=%d len=%d after replace, want 300, 1", c.Used(), c.Len())
	}
	e, _ := c.Get("a")
	if e.Doc.Size != 300 {
		t.Errorf("resident size = %d, want 300", e.Doc.Size)
	}
}

// TestStableDocID: a URL keeps one dense ID across evict/refetch cycles —
// the keying contract GD*'s estimator depends on.
func TestStableDocID(t *testing.T) {
	c := mustNew(t, Config{Capacity: 1000, Shards: 4})
	e1 := ent("a", 100)
	c.Set("a", e1)
	id := e1.Doc.ID
	c.Remove("a")
	e2 := ent("a", 120)
	c.Set("a", e2)
	if e2.Doc.ID != id {
		t.Errorf("refetched doc ID = %d, want stable %d", e2.Doc.ID, id)
	}
}

func TestOversizedRejected(t *testing.T) {
	c := mustNew(t, Config{Capacity: 100, Shards: 2})
	if c.Set("big", ent("big", 101)) {
		t.Error("object larger than capacity admitted")
	}
	if c.Rejects() != 1 {
		t.Errorf("rejects = %d, want 1", c.Rejects())
	}
	if c.Used() != 0 {
		t.Errorf("used = %d after reject, want 0", c.Used())
	}
}

// TestCrossShardEviction: when the home shard has nothing to give up, the
// budget is freed from other shards — the global budget dominates shard
// locality.
func TestCrossShardEviction(t *testing.T) {
	// Fill the budget with three objects; with 16 shards they almost
	// surely land on distinct shards, and the fourth key's home shard is
	// likely empty — forcing the eviction sweep across shards.
	var evicted []string
	c2 := mustNew(t, Config{Capacity: 300, Shards: 16, OnEvict: func(e *Entry) {
		evicted = append(evicted, e.Doc.Key)
	}})
	for _, k := range []string{"a", "b", "c"} {
		if !c2.Set(k, ent(k, 100)) {
			t.Fatalf("set %s rejected", k)
		}
	}
	if !c2.Set("d", ent("d", 100)) {
		t.Fatal("set d rejected despite evictable bytes on other shards")
	}
	if c2.Used() > 300 {
		t.Errorf("used %d exceeds capacity 300", c2.Used())
	}
	if len(evicted) != 1 {
		t.Errorf("evicted %v, want exactly one victim", evicted)
	}
	if _, ok := c2.Peek("d"); !ok {
		t.Error("d not resident after cross-shard eviction")
	}
}

// TestShardUsedSumsToTotal: per-shard accounting must reconcile with the
// global budget counter at quiescence.
func TestShardUsedSumsToTotal(t *testing.T) {
	c := mustNew(t, Config{Capacity: 10000, Shards: 8})
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("doc%d", i)
		c.Set(k, ent(k, int64(50+i)))
	}
	var sum int64
	for _, u := range c.ShardUsed() {
		sum += u
	}
	if sum != c.Used() {
		t.Errorf("sum of shard bytes %d != global used %d", sum, c.Used())
	}
	var eachSum int64
	n := 0
	c.Each(func(_ string, e *Entry) { eachSum += e.Doc.Size; n++ })
	if eachSum != c.Used() || n != c.Len() {
		t.Errorf("entry-walk bytes %d (n=%d) != used %d (len=%d)", eachSum, n, c.Used(), c.Len())
	}
}

// TestPolicyPluggablePerShard: each shard runs its own instance of the
// configured scheme (SIZE evicts the largest resident object).
func TestPolicyPluggablePerShard(t *testing.T) {
	c := mustNew(t, Config{
		Capacity: 300,
		Shards:   1,
		Policy:   policy.MustFactory(policy.Spec{Scheme: "size"}),
	})
	c.Set("small", ent("small", 50))
	c.Set("big", ent("big", 200))
	c.Set("mid", ent("mid", 100)) // needs 50 more bytes: SIZE evicts big
	if _, ok := c.Peek("big"); ok {
		t.Error("SIZE policy kept the largest object")
	}
	if _, ok := c.Peek("small"); !ok {
		t.Error("SIZE policy evicted the smallest object")
	}
}
