// Package flight implements call coalescing ("singleflight"): concurrent
// callers asking for the same key share one execution of the underlying
// function and all receive its result. The proxy uses a Group to collapse
// simultaneous cache misses on one URL into a single origin fetch — the
// thundering-herd suppression a shared cache in front of a slow origin
// needs to stay closed-loop stable.
//
// The implementation is stdlib-only and deliberately small: a mutex, a map
// of in-flight calls, and a WaitGroup per call. Unlike the extended
// golang.org/x/sync version there is no channel variant and no Forget;
// a call's result is shared only with callers that arrive while it is in
// flight, never memoized beyond that.
package flight

import (
	"fmt"
	"sync"
)

// call is one in-flight (or just-completed) execution of fn for a key.
type call struct {
	wg   sync.WaitGroup
	val  any
	err  error
	dups int // waiters that joined while the call was in flight
}

// Group coalesces duplicate concurrent calls by key. The zero value is
// ready to use. A Group must not be copied after first use.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do executes fn, making sure only one execution per key is in flight at a
// time. Callers that arrive while an execution is in flight wait for it
// and receive the same value and error; shared reports whether this caller
// joined another caller's execution (true for the waiters, always false
// for the executing caller). Counting shared results therefore counts
// exactly the calls that were coalesced away — the accounting the proxy's
// wcproxy_coalesced_total metric reconciles against.
//
// If fn panics, the panic is propagated to the executing caller and the
// waiters receive an error — they cannot be unwound through a foreign
// stack, but they must not hang.
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	return g.DoShared(key, fn, nil)
}

// DoShared is Do with a lifetime hook: after fn completes — and before
// any waiter can observe the result — prepare is called exactly once with
// the value, the error, and the total number of callers that will receive
// them (the executing caller plus every coalesced waiter). The window is
// race-free by construction: waiters can only join while the call is in
// the in-flight map, prepare runs after the call has been retired from
// the map, and the waiters are still blocked when it runs. The proxy uses
// it to acquire one reference on a pooled response body per consumer, so
// no consumer can see the body recycled under it. prepare must be fast
// and must not call back into the Group; a nil prepare makes DoShared
// identical to Do.
func (g *Group) DoShared(key string, fn func() (any, error), prepare func(v any, err error, consumers int)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &call{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	panicked := true
	defer func() {
		if panicked {
			// Reached only when fn panicked: release the waiters with an
			// error before the panic unwinds through this frame.
			c.err = fmt.Errorf("flight: call for %q panicked", key)
			g.finish(key, c, prepare)
		}
	}()
	c.val, c.err = fn()
	panicked = false
	g.finish(key, c, prepare)
	return c.val, c.err, false
}

// finish retires the call from the in-flight map (fixing the consumer
// count — later callers start a fresh flight), runs the prepare hook, and
// only then publishes the result to the waiters.
func (g *Group) finish(key string, c *call, prepare func(v any, err error, consumers int)) {
	g.mu.Lock()
	delete(g.m, key)
	dups := c.dups
	g.mu.Unlock()
	if prepare != nil {
		prepare(c.val, c.err, dups+1)
	}
	c.wg.Done()
}

// InFlight returns the number of keys currently executing — useful for
// tests and for a load-shedding heuristic, not required for correctness.
func (g *Group) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
