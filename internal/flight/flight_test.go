package flight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoSequential(t *testing.T) {
	var g Group
	v, err, shared := g.Do("k", func() (any, error) { return "val", nil })
	if v != "val" || err != nil || shared {
		t.Errorf("Do = (%v, %v, %v), want (val, nil, false)", v, err, shared)
	}
	// A second call after the first completed executes again — no
	// memoization.
	calls := 0
	for i := 0; i < 3; i++ {
		_, _, _ = g.Do("k", func() (any, error) { calls++; return nil, nil })
	}
	if calls != 3 {
		t.Errorf("sequential calls executed %d times, want 3", calls)
	}
	if g.InFlight() != 0 {
		t.Errorf("InFlight = %d after completion, want 0", g.InFlight())
	}
}

func TestDoError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestDoCoalescesConcurrent(t *testing.T) {
	var g Group
	var execs atomic.Int64
	release := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	results := make([]any, waiters)
	sharedCount := atomic.Int64{}
	started := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			v, err, shared := g.Do("url", func() (any, error) {
				execs.Add(1)
				<-release // hold the call open until every goroutine joined
				return "body", nil
			})
			if err != nil {
				t.Errorf("err = %v", err)
			}
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	// All goroutines have at least reached Do; give the stragglers a beat
	// to block on the in-flight call, then release it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	for i, v := range results {
		if v != "body" {
			t.Errorf("caller %d got %v, want body", i, v)
		}
	}
	if sharedCount.Load() != waiters-1 {
		t.Errorf("shared reported by %d callers, want %d (every caller but the executing leader)",
			sharedCount.Load(), waiters-1)
	}
}

func TestDoDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _ = g.Do(string(rune('a'+i)), func() (any, error) {
				execs.Add(1)
				time.Sleep(5 * time.Millisecond)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if n := execs.Load(); n != 4 {
		t.Errorf("fn executed %d times, want 4 (one per key)", n)
	}
}

func TestDoPanicReleasesWaiters(t *testing.T) {
	var g Group
	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer func() { _ = recover() }()
		_, _, _ = g.Do("k", func() (any, error) {
			close(entered)
			time.Sleep(10 * time.Millisecond)
			panic("origin exploded")
		})
	}()
	<-entered
	go func() {
		_, err, _ := g.Do("k", func() (any, error) { return nil, nil })
		done <- err
	}()
	select {
	case err := <-done:
		// The waiter must either share the panicking call's error or — if
		// it arrived after the call retired — run its own fn successfully.
		if err != nil && g.InFlight() != 0 {
			t.Errorf("in-flight map not drained after panic: %d", g.InFlight())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter hung after leader panicked")
	}
}

func TestDoSharedCountsConsumers(t *testing.T) {
	var g Group
	const waiters = 7
	release := make(chan struct{})
	joined := make(chan struct{}, waiters)

	var consumers atomic.Int64
	var prepared atomic.Int64
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err, shared := g.DoShared("k", func() (any, error) {
			for i := 0; i < waiters; i++ {
				<-joined // hold the call open until every waiter is in
			}
			<-release
			return 42, nil
		}, func(v any, err error, n int) {
			prepared.Add(1)
			consumers.Store(int64(n))
		})
		if v != 42 || err != nil || shared {
			panic("leader got wrong result")
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g.mu.Lock()
				_, inFlight := g.m["k"]
				g.mu.Unlock()
				if inFlight {
					break
				}
				time.Sleep(time.Millisecond)
			}
			joined <- struct{}{}
			v, err, shared := g.DoShared("k", func() (any, error) {
				t.Error("waiter executed fn; should have coalesced")
				return nil, nil
			}, nil)
			if v != 42 || err != nil || !shared {
				t.Errorf("waiter got (%v, %v, %v), want (42, nil, true)", v, err, shared)
			}
		}()
	}

	close(release)
	<-leaderDone
	wg.Wait()
	if got := consumers.Load(); got != waiters+1 {
		t.Errorf("prepare saw %d consumers, want %d", got, waiters+1)
	}
	if got := prepared.Load(); got != 1 {
		t.Errorf("prepare ran %d times, want exactly 1", got)
	}
}

// prepare must observe the result before ANY consumer: the hook
// increments a guard the consumers assert on.
func TestDoSharedPrepareHappensBeforeConsumption(t *testing.T) {
	var g Group
	var ready atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, _ := g.DoShared("k", func() (any, error) {
				time.Sleep(2 * time.Millisecond)
				return "v", nil
			}, func(any, error, int) { ready.Store(true) })
			if err == nil && v == "v" && !ready.Load() {
				t.Error("consumer observed result before prepare ran")
			}
		}()
	}
	wg.Wait()
}

func TestDoSharedErrorStillPrepares(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	var sawErr error
	var n int
	_, err, _ := g.DoShared("k", func() (any, error) { return nil, boom }, func(_ any, e error, c int) {
		sawErr, n = e, c
	})
	if !errors.Is(err, boom) || !errors.Is(sawErr, boom) || n != 1 {
		t.Errorf("prepare saw (err=%v, n=%d), caller err=%v", sawErr, n, err)
	}
}
