package report

import (
	"math"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Demo", "", "Images", "HTML")
	t.AddRow("Requests", "100", "50")
	t.AddRowf("", 0.5, 12.345)
	return t
}

func TestTableText(t *testing.T) {
	out := sampleTable().Text()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Images") || !strings.Contains(out, "HTML") {
		t.Error("headers missing")
	}
	if !strings.Contains(out, "Requests") {
		t.Error("row label missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableMarkdown(t *testing.T) {
	out := sampleTable().Markdown()
	if !strings.Contains(out, "| Requests |") {
		t.Errorf("markdown row missing:\n%s", out)
	}
	if !strings.Contains(out, ":---|") {
		t.Error("alignment row missing")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow(`comma,and"quote`, "x")
	out := tbl.CSV()
	if !strings.Contains(out, `"comma,and""quote"`) {
		t.Errorf("CSV escaping broken:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header broken:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("1", "2", "3") // wider than the header
	tbl.AddRow()              // empty row
	out := tbl.Text()
	if !strings.Contains(out, "3") {
		t.Error("extra cells dropped")
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tbl.NumRows())
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{1.5, "1.5"},
		{12.345, "12.35"}, // hmm: rounds at 2 decimals
		{0.5, "0.5"},
		{0.1234, "0.1234"},
		{0.12, "0.12"},
		{2048, "2048"},
		{-3.25, "-3.25"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.in); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPlotRender(t *testing.T) {
	p := Plot{Title: "Hit rate", XLabel: "cache MB", YLabel: "HR", LogX: true, Width: 40, Height: 10}
	p.Add(Series{Name: "LRU", X: []float64{1, 10, 100}, Y: []float64{0.1, 0.2, 0.3}})
	p.Add(Series{Name: "GD*", X: []float64{1, 10, 100}, Y: []float64{0.2, 0.3, 0.4}})
	out := p.Render()
	for _, want := range []string{"Hit rate", "LRU", "GD*", "*", "o", "cache MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestPlotEmpty(t *testing.T) {
	p := Plot{Title: "empty"}
	out := p.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot output: %q", out)
	}
}

func TestPlotDropsNonFinite(t *testing.T) {
	p := Plot{Width: 20, Height: 5}
	inf := math.Inf(1)
	p.Add(Series{Name: "s", X: []float64{1, 2, inf}, Y: []float64{1, math.NaN(), 3}})
	out := p.Render()
	if out == "" {
		t.Error("plot with partial data rendered nothing")
	}
}

func TestPlotFixedYRange(t *testing.T) {
	p := Plot{Width: 30, Height: 8, YFixed: true, YMin: 0, YMax: 1}
	p.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0.2, 0.9}})
	out := p.Render()
	if !strings.Contains(out, "1 |") {
		t.Errorf("fixed y max label missing:\n%s", out)
	}
}
