package report

import (
	"fmt"
	"math"
	"strings"
)

// Histogram renders a horizontal ASCII bar chart of a sample's
// distribution over logarithmic buckets — used to eyeball the heavy
// tails of document- and transfer-size distributions.
type Histogram struct {
	// Title is printed above the chart.
	Title string
	// Unit labels the bucket bounds (e.g. "KB").
	Unit string
	// Buckets is the number of log-spaced buckets (default 12).
	Buckets int
	// Width is the maximum bar width in characters (default 48).
	Width int
}

// Render draws the distribution of xs. Non-positive samples are dropped
// (sizes are positive); an empty sample renders a placeholder.
func (h *Histogram) Render(xs []float64) string {
	buckets := h.Buckets
	if buckets <= 0 {
		buckets = 12
	}
	width := h.Width
	if width <= 0 {
		width = 48
	}

	var positive []float64
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x > 0 {
			positive = append(positive, x)
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
	}
	var sb strings.Builder
	if h.Title != "" {
		sb.WriteString(h.Title)
		sb.WriteByte('\n')
	}
	if len(positive) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if hi <= lo {
		hi = lo * 2
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	span := logHi - logLo
	counts := make([]int, buckets)
	for _, x := range positive {
		i := int(float64(buckets) * (math.Log(x) - logLo) / span)
		if i >= buckets {
			i = buckets - 1
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	bound := func(i int) float64 { return math.Exp(logLo + span*float64(i)/float64(buckets)) }
	labels := make([]string, buckets)
	labelWidth := 0
	for i := range counts {
		labels[i] = fmt.Sprintf("%s–%s%s", FormatFloat(bound(i)), FormatFloat(bound(i+1)), h.Unit)
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	for i, c := range counts {
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "%s |%s %d\n",
			pad(labels[i], labelWidth), strings.Repeat("#", bar), c)
	}
	return sb.String()
}
