package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SVG dimensions and layout constants.
const (
	svgWidth      = 640
	svgHeight     = 420
	svgMarginL    = 64
	svgMarginR    = 24
	svgMarginT    = 40
	svgMarginB    = 88
	svgLegendRowH = 16
)

// svgPalette holds line colors chosen to stay distinguishable in print.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// svgDashes differentiates series when color is unavailable.
var svgDashes = []string{"", "6,3", "2,2", "8,3,2,3", "4,4", "1,3", "10,4", "3,6"}

// SVG renders the plot as a standalone SVG document — the same figure the
// ASCII Render draws, publication-ready. Axes honour LogX and the fixed
// y-range; each series gets a distinct color and dash pattern plus a
// point marker, and the legend sits below the x-axis.
func (p *Plot) SVG() string {
	width, height := svgWidth, svgHeight
	plotW := float64(width - svgMarginL - svgMarginR)
	plotH := float64(height - svgMarginT - svgMarginB)

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	hasData := false
	for _, s := range p.series {
		for i := range s.X {
			hasData = true
			x := p.xCoord(s.X[i])
			xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
			yMin, yMax = math.Min(yMin, s.Y[i]), math.Max(yMax, s.Y[i])
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	if p.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="22" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`,
			width/2, escapeXML(p.Title))
	}
	if !hasData {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">no data</text></svg>`,
			width/2, height/2)
		return sb.String()
	}
	if p.YFixed {
		yMin, yMax = p.YMin, p.YMax
	} else {
		if yMin > 0 {
			yMin = 0
		}
		if yMax <= yMin {
			yMax = yMin + 1
		}
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}

	px := func(x float64) float64 {
		return svgMarginL + (p.xCoord(x)-xMin)/(xMax-xMin)*plotW
	}
	py := func(y float64) float64 {
		return svgMarginT + (1-(y-yMin)/(yMax-yMin))*plotH
	}

	// Frame and gridlines with y tick labels.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`,
		svgMarginL, svgMarginT, plotW, plotH)
	const yTicks = 5
	for i := 0; i <= yTicks; i++ {
		v := yMin + (yMax-yMin)*float64(i)/yTicks
		y := py(v)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`,
			svgMarginL, y, svgMarginL+plotW, y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`,
			svgMarginL-6, y+3, escapeXML(FormatFloat(v)))
	}
	// X ticks at each distinct data x (the cache-size grid is sparse).
	for _, xv := range p.xTickValues() {
		x := px(xv)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`,
			x, float64(svgMarginT), x, svgMarginT+plotH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			x, svgMarginT+plotH+14, escapeXML(FormatFloat(xv)))
	}

	// Series.
	for si, s := range p.series {
		if len(s.X) == 0 {
			continue
		}
		color := svgPalette[si%len(svgPalette)]
		dash := svgDashes[si%len(svgDashes)]
		order := make([]int, len(s.X))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return s.X[order[a]] < s.X[order[b]] })
		var points []string
		for _, idx := range order {
			points = append(points, fmt.Sprintf("%.1f,%.1f", px(s.X[idx]), py(s.Y[idx])))
		}
		dashAttr := ""
		if dash != "" {
			dashAttr = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"%s/>`,
			strings.Join(points, " "), color, dashAttr)
		for _, idx := range order {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`,
				px(s.X[idx]), py(s.Y[idx]), color)
		}
	}

	// Axis labels.
	if p.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`,
			svgMarginL+int(plotW)/2, svgMarginT+plotH+30, escapeXML(p.XLabel))
	}
	if p.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`,
			svgMarginT+plotH/2, svgMarginT+plotH/2, escapeXML(p.YLabel))
	}

	// Legend: two columns below the x-axis label.
	legendTop := svgMarginT + plotH + 42
	for si, s := range p.series {
		col := si % 2
		row := si / 2
		x := svgMarginL + float64(col)*plotW/2
		y := legendTop + float64(row*svgLegendRowH)
		color := svgPalette[si%len(svgPalette)]
		dash := svgDashes[si%len(svgDashes)]
		dashAttr := ""
		if dash != "" {
			dashAttr = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
		}
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.6"%s/>`,
			x, y, x+26, y, color, dashAttr)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`,
			x+32, y+4, escapeXML(s.Name))
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

// xTickValues returns the distinct x values across series, capped to a
// readable count.
func (p *Plot) xTickValues() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range p.series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	sort.Float64s(out)
	const maxTicks = 12
	if len(out) > maxTicks {
		step := (len(out) + maxTicks - 1) / maxTicks
		var thin []float64
		for i := 0; i < len(out); i += step {
			thin = append(thin, out[i])
		}
		out = thin
	}
	return out
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
