package report

import (
	"encoding/xml"
	"strings"
	"testing"
)

func sampleSVGPlot() *Plot {
	p := &Plot{
		Title:  "Hit rate & <escaping>",
		XLabel: "cache size (MB)",
		YLabel: "hit rate",
		LogX:   true,
	}
	p.Add(Series{Name: "LRU", X: []float64{8, 16, 32, 64}, Y: []float64{0.1, 0.2, 0.3, 0.4}})
	p.Add(Series{Name: `GD*("P")`, X: []float64{8, 16, 32, 64}, Y: []float64{0.2, 0.3, 0.4, 0.5}})
	return p
}

func TestSVGWellFormed(t *testing.T) {
	out := sampleSVGPlot().SVG()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, out)
		}
	}
}

func TestSVGContent(t *testing.T) {
	out := sampleSVGPlot().SVG()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"LRU", "GD*(&quot;P&quot;)", "Hit rate &amp; &lt;escaping&gt;",
		"cache size (MB)", "hit rate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2", got)
	}
	// 8 data points => 8 markers.
	if got := strings.Count(out, "<circle"); got != 8 {
		t.Errorf("circle count = %d, want 8", got)
	}
}

func TestSVGEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	out := p.SVG()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty SVG should say so:\n%s", out)
	}
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("empty SVG malformed: %v", err)
		}
	}
}

func TestSVGFixedRange(t *testing.T) {
	p := &Plot{YFixed: true, YMin: 0, YMax: 100}
	p.Add(Series{Name: "s", X: []float64{1, 2}, Y: []float64{40, 60}})
	out := p.SVG()
	if !strings.Contains(out, ">100<") {
		t.Errorf("fixed y max label missing:\n%s", out)
	}
}

func TestSVGTickThinning(t *testing.T) {
	p := &Plot{}
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i], ys[i] = float64(i+1), float64(i)
	}
	p.Add(Series{Name: "dense", X: xs, Y: ys})
	ticks := p.xTickValues()
	if len(ticks) > 14 {
		t.Errorf("tick thinning failed: %d ticks", len(ticks))
	}
}
