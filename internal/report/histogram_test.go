package report

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func TestHistogramRender(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()*50 + 1
	}
	h := Histogram{Title: "sizes", Unit: "KB", Buckets: 10, Width: 30}
	out := h.Render(xs)
	if !strings.Contains(out, "sizes") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // title + 10 buckets
		t.Fatalf("got %d lines, want 11:\n%s", len(lines), out)
	}
	// Total counts must equal the sample size.
	total := 0
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		n, err := strconv.Atoi(fields[len(fields)-1])
		if err != nil {
			t.Fatalf("bad count in %q: %v", line, err)
		}
		total += n
	}
	if total != len(xs) {
		t.Errorf("bucket counts sum to %d, want %d", total, len(xs))
	}
	// No bar exceeds the width.
	for _, line := range lines[1:] {
		if strings.Count(line, "#") > 30 {
			t.Errorf("bar too wide: %q", line)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := Histogram{}
	if out := h.Render(nil); !strings.Contains(out, "(no data)") {
		t.Error("empty render missing placeholder")
	}
	if out := h.Render([]float64{-5, 0}); !strings.Contains(out, "(no data)") {
		t.Error("non-positive-only render missing placeholder")
	}
	// Single value must not divide by zero.
	out := h.Render([]float64{42})
	if !strings.Contains(out, "1") {
		t.Errorf("single-value histogram: %q", out)
	}
}
