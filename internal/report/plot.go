package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one line of a plot.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// X and Y are the data points, parallel slices.
	X []float64
	Y []float64
}

// Plot renders multi-series line charts on a character grid — enough to
// eyeball the shape of the paper's figures in a terminal or a Markdown
// code block.
type Plot struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the grid dimensions in characters (defaults
	// 72×20).
	Width, Height int
	// LogX plots the x axis on a log10 scale (cache sizes span decades).
	LogX bool
	// YMin and YMax fix the y range when YFixed is set; otherwise the
	// range adapts to the data with a zero floor.
	YMin, YMax float64
	YFixed     bool

	series []Series
}

// seriesMarks assigns each series a distinct mark character.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series; points with non-finite coordinates are dropped.
func (p *Plot) Add(s Series) {
	clean := Series{Name: s.Name}
	for i := range s.X {
		if i >= len(s.Y) {
			break
		}
		if isFinite(s.X[i]) && isFinite(s.Y[i]) {
			clean.X = append(clean.X, s.X[i])
			clean.Y = append(clean.Y, s.Y[i])
		}
	}
	p.series = append(p.series, clean)
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Render draws the chart.
func (p *Plot) Render() string {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	var hasData bool
	for _, s := range p.series {
		for i := range s.X {
			hasData = true
			x := p.xCoord(s.X[i])
			xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
			yMin, yMax = math.Min(yMin, s.Y[i]), math.Max(yMax, s.Y[i])
		}
	}
	if !hasData {
		return p.Title + "\n(no data)\n"
	}
	if p.YFixed {
		yMin, yMax = p.YMin, p.YMax
	} else {
		if yMin > 0 {
			yMin = 0
		}
		if yMax <= yMin {
			yMax = yMin + 1
		}
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((p.xCoord(x) - xMin) / (xMax - xMin) * float64(width-1)))
		return clampInt(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - yMin) / (yMax - yMin) * float64(height-1)))
		return clampInt(height-1-r, 0, height-1)
	}

	for si, s := range p.series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Connect consecutive points with interpolated steps so curves
		// read as lines rather than scattered dots.
		type pt struct{ c, r int }
		pts := make([]pt, len(s.X))
		order := make([]int, len(s.X))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return s.X[order[a]] < s.X[order[b]] })
		for i, idx := range order {
			pts[i] = pt{c: col(s.X[idx]), r: row(s.Y[idx])}
		}
		for i := range pts {
			grid[pts[i].r][pts[i].c] = mark
			if i == 0 {
				continue
			}
			steps := absInt(pts[i].c-pts[i-1].c) + absInt(pts[i].r-pts[i-1].r)
			for st := 1; st < steps; st++ {
				f := float64(st) / float64(steps)
				c := pts[i-1].c + int(math.Round(f*float64(pts[i].c-pts[i-1].c)))
				r := pts[i-1].r + int(math.Round(f*float64(pts[i].r-pts[i-1].r)))
				if grid[r][c] == ' ' {
					grid[r][c] = '.'
				}
			}
		}
	}

	var sb strings.Builder
	if p.Title != "" {
		sb.WriteString(p.Title)
		sb.WriteByte('\n')
	}
	yTop := FormatFloat(yMax)
	yBottom := FormatFloat(yMin)
	labelWidth := len(yTop)
	if len(yBottom) > labelWidth {
		labelWidth = len(yBottom)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelWidth)
		if r == 0 {
			label = pad(yTop, labelWidth)
		}
		if r == height-1 {
			label = pad(yBottom, labelWidth)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", labelWidth))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	// X-axis end labels.
	lo, hi := p.xLabel(xMin), p.xLabel(xMax)
	gap := width - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	sb.WriteString(strings.Repeat(" ", labelWidth+2))
	sb.WriteString(lo)
	sb.WriteString(strings.Repeat(" ", gap))
	sb.WriteString(hi)
	sb.WriteByte('\n')
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&sb, "%s x: %s   y: %s\n", strings.Repeat(" ", labelWidth), p.XLabel, p.YLabel)
	}
	for si, s := range p.series {
		fmt.Fprintf(&sb, "%s  %c %s\n", strings.Repeat(" ", labelWidth), seriesMarks[si%len(seriesMarks)], s.Name)
	}
	return sb.String()
}

func (p *Plot) xCoord(x float64) float64 {
	if p.LogX && x > 0 {
		return math.Log10(x)
	}
	return x
}

func (p *Plot) xLabel(coord float64) string {
	if p.LogX {
		return FormatFloat(math.Pow(10, coord))
	}
	return FormatFloat(coord)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func clampInt(x, lo, hi int) int {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
