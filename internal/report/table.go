// Package report renders experiment output: aligned text tables (the
// paper's Tables 1–5), CSV and Markdown variants, and ASCII line plots for
// the hit-rate and occupancy figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a rectangular grid of cells with a header row.
type Table struct {
	// Title is printed above the table when non-empty.
	Title   string
	header  []string
	rows    [][]string
	numCols int
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header, numCols: len(header)}
}

// AddRow appends a row; missing cells render empty, extra cells widen the
// table.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > t.numCols {
		t.numCols = len(cells)
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which is rendered with the table's default
// precision.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = FormatFloat(v)
		case string:
			out[i] = v
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// FormatFloat renders a float compactly: 2 decimals for magnitudes ≥ 1,
// up to 4 significant decimals below 1, trimming trailing zeros.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	var s string
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		s = fmt.Sprintf("%.2f", v)
	default:
		s = fmt.Sprintf("%.4f", v)
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func (t *Table) widths() []int {
	w := make([]int, t.numCols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	return w
}

// Text renders the table as aligned plain text: the first column is
// left-aligned (row labels), the rest right-aligned (numbers).
func (t *Table) Text() string {
	w := t.widths()
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < t.numCols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				sb.WriteString(cell)
				sb.WriteString(strings.Repeat(" ", w[i]-len(cell)))
			} else {
				sb.WriteString(strings.Repeat(" ", w[i]-len(cell)))
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := t.numCols - 1
	for _, width := range w {
		total += width + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		sb.WriteByte('|')
		for i := 0; i < t.numCols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			sb.WriteByte(' ')
			sb.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sb.WriteByte('|')
	for i := 0; i < t.numCols; i++ {
		if i == 0 {
			sb.WriteString(":---|")
		} else {
			sb.WriteString("---:|")
		}
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < t.numCols; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
