// Package pool implements the size-classed buffer pool the serving path
// runs on: power-of-two byte-slice classes recycled through sync.Pool, so
// the proxy's steady state performs no allocator work at all — origin
// bodies are read into pooled buffers, cached entries hand those buffers
// back on their last release, and per-request scratch (key assembly, body
// drains) cycles through the same classes.
//
// A Pool hands out *Buf handles rather than raw slices: the handle pins
// the buffer's class so Release can return it to the right sync.Pool
// without recomputing anything, and the handle itself is recycled along
// with its buffer, so a Get/Release pair allocates nothing once the class
// is warm. Requests larger than the biggest class are served by a plain
// heap allocation ("bypass" buffers) whose Release is a no-op — the
// garbage collector owns them, and Stats counts them separately.
//
// Accounting is exact and monotonic: every Get increments the class's
// acquire counter, every Release of a pooled buffer its release counter,
// and every fresh allocation its news counter. Outstanding() — acquires
// minus releases — therefore counts live pooled buffers, which is the
// invariant the proxy's pool-balance test pins: after the server drains,
// outstanding equals exactly the buffers still held by resident cache
// entries. sync.Pool may drop idle buffers under GC pressure; that shows
// up as extra news, never as an accounting imbalance.
package pool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minShift/maxShift bound the size classes: 512 B up to 16 MiB, which
	// covers everything the proxy caches (DefaultMaxObjectBytes is 8 MiB,
	// and the oversize probe reads one byte past it).
	minShift = 9
	maxShift = 24
	// NumClasses is the number of power-of-two size classes.
	NumClasses = maxShift - minShift + 1

	// MinClassBytes and MaxClassBytes are the smallest and largest pooled
	// buffer sizes; requests above MaxClassBytes bypass the pool.
	MinClassBytes = 1 << minShift
	MaxClassBytes = 1 << maxShift
)

// Buf is a pooled buffer handle. B is the usable slice, sized exactly to
// the class (or to the requested length for a bypass buffer); callers may
// reslice B freely but must keep the handle to Release it. A Buf must be
// released exactly once and not used afterwards.
type Buf struct {
	B     []byte
	pool  *Pool
	class int8 // -1 for bypass buffers the GC owns
}

// Release returns the buffer to its pool. Releasing a bypass buffer is a
// no-op (the garbage collector reclaims it). The caller must not touch
// the handle or its bytes afterwards.
func (b *Buf) Release() {
	p := b.pool
	if p == nil {
		return
	}
	b.B = b.B[:cap(b.B)]
	p.stats[b.class].releases.Add(1)
	p.classes[b.class].Put(b)
}

// Len returns the buffer's class size in bytes (or the bypass buffer's
// allocated length).
func (b *Buf) Len() int { return cap(b.B) }

// classStats is one class's acquire/release/new accounting.
type classStats struct {
	acquires atomic.Int64
	releases atomic.Int64
	news     atomic.Int64
}

// Pool is a set of power-of-two buffer classes. The zero value is not
// usable; call New. All methods are safe for concurrent use.
type Pool struct {
	classes [NumClasses]sync.Pool
	stats   [NumClasses]classStats
	bypass  atomic.Int64 // Get calls larger than MaxClassBytes
}

// New creates an empty pool.
func New() *Pool {
	p := &Pool{}
	for c := range p.classes {
		size := 1 << (minShift + c)
		cls := int8(c)
		st := &p.stats[c]
		p.classes[c].New = func() any {
			st.news.Add(1)
			return &Buf{B: make([]byte, size), pool: p, class: cls}
		}
	}
	return p
}

// Default is the process-wide shared pool. Components that want isolated
// accounting (tests, benchmarks) create their own with New.
var Default = New()

// classFor returns the class index for a request of n bytes, or -1 when n
// exceeds the largest class.
func classFor(n int) int {
	if n > MaxClassBytes {
		return -1
	}
	if n <= MinClassBytes {
		return 0
	}
	return bits.Len(uint(n-1)) - minShift
}

// Get returns a buffer with at least n usable bytes: the smallest class
// that fits, with B sliced to the full class size. Requests larger than
// MaxClassBytes bypass the pool entirely and come straight from the heap
// (their Release is a no-op).
func (p *Pool) Get(n int) *Buf {
	c := classFor(n)
	if c < 0 {
		p.bypass.Add(1)
		return &Buf{B: make([]byte, n), class: -1}
	}
	p.stats[c].acquires.Add(1)
	return p.classes[c].Get().(*Buf)
}

// Grow returns a buffer of at least n bytes carrying b's first len bytes,
// releasing b. It is the pooled replacement for append-style growth: the
// copy runs once per class step, so reading an unknown-length stream
// costs O(total bytes) copying overall, like append, but recycles every
// intermediate buffer.
func (p *Pool) Grow(b *Buf, used, n int) *Buf {
	if n <= cap(b.B) {
		return b
	}
	nb := p.Get(n)
	copy(nb.B, b.B[:used])
	b.Release()
	return nb
}

// Stats is a point-in-time aggregate of the pool's accounting.
type Stats struct {
	// Acquires and Releases count Get and Release calls on pooled
	// classes; News counts buffers allocated because the class was empty.
	Acquires int64
	Releases int64
	News     int64
	// Bypass counts Get calls too large for any class, served unpooled.
	Bypass int64
}

// Outstanding returns the number of pooled buffers currently held by
// callers (acquired and not yet released).
func (s Stats) Outstanding() int64 { return s.Acquires - s.Releases }

// Stats aggregates the per-class counters.
func (p *Pool) Stats() Stats {
	var s Stats
	for c := range p.stats {
		st := &p.stats[c]
		s.Acquires += st.acquires.Load()
		s.Releases += st.releases.Load()
		s.News += st.news.Load()
	}
	s.Bypass = p.bypass.Load()
	return s
}

// ClassStat is one size class's accounting, for introspection and gauges.
type ClassStat struct {
	Size     int
	Acquires int64
	Releases int64
	News     int64
}

// ClassStats returns every class's counters in size order.
func (p *Pool) ClassStats() []ClassStat {
	out := make([]ClassStat, NumClasses)
	for c := range p.stats {
		st := &p.stats[c]
		out[c] = ClassStat{
			Size:     1 << (minShift + c),
			Acquires: st.acquires.Load(),
			Releases: st.releases.Load(),
			News:     st.news.Load(),
		}
	}
	return out
}
