package pool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, 0},
		{1, 0},
		{MinClassBytes, 0},
		{MinClassBytes + 1, 1},
		{1024, 1},
		{1025, 2},
		{MaxClassBytes, NumClasses - 1},
		{MaxClassBytes + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetSizes(t *testing.T) {
	p := New()
	for _, n := range []int{0, 1, 100, 512, 513, 4096, 1 << 20} {
		b := p.Get(n)
		if len(b.B) < n {
			t.Errorf("Get(%d): len %d < requested", n, len(b.B))
		}
		if len(b.B)&(len(b.B)-1) != 0 {
			t.Errorf("Get(%d): class size %d not a power of two", n, len(b.B))
		}
		b.Release()
	}
}

func TestBypassOversize(t *testing.T) {
	p := New()
	n := MaxClassBytes + 1
	b := p.Get(n)
	if len(b.B) != n {
		t.Fatalf("bypass Get(%d): len %d", n, len(b.B))
	}
	if b.pool != nil || b.class != -1 {
		t.Fatalf("bypass buffer should not belong to the pool")
	}
	b.Release() // must be a no-op, not a panic
	st := p.Stats()
	if st.Bypass != 1 {
		t.Errorf("Bypass = %d, want 1", st.Bypass)
	}
	if st.Acquires != 0 || st.Releases != 0 {
		t.Errorf("bypass must not touch class counters: %+v", st)
	}
}

func TestReuseSameBuffer(t *testing.T) {
	p := New()
	b := p.Get(1000)
	ptr := &b.B[0]
	b.Release()
	b2 := p.Get(900) // same class
	if &b2.B[0] != ptr {
		t.Errorf("sequential Get after Release did not reuse the buffer")
	}
	if got := p.Stats().News; got != 1 {
		t.Errorf("News = %d, want 1 (one allocation, reused)", got)
	}
	b2.Release()
}

func TestReleaseRestoresFullClass(t *testing.T) {
	p := New()
	b := p.Get(600)
	b.B = b.B[:10] // caller resliced
	b.Release()
	b2 := p.Get(600)
	if len(b2.B) != 1024 {
		t.Errorf("reacquired buffer len %d, want full class 1024", len(b2.B))
	}
	b2.Release()
}

func TestGrow(t *testing.T) {
	p := New()
	b := p.Get(512)
	for i := range b.B {
		b.B[i] = byte(i)
	}
	g := p.Grow(b, 512, 2000)
	if cap(g.B) < 2000 {
		t.Fatalf("Grow cap %d < 2000", cap(g.B))
	}
	for i := 0; i < 512; i++ {
		if g.B[i] != byte(i) {
			t.Fatalf("Grow lost byte %d", i)
		}
	}
	// Growing within capacity returns the same handle.
	if g2 := p.Grow(g, 2000, 100); g2 != g {
		t.Errorf("Grow within capacity must be a no-op")
	}
	g.Release()
	if out := p.Stats().Outstanding(); out != 0 {
		t.Errorf("Outstanding = %d after release, want 0", out)
	}
}

func TestStatsBalance(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := p.Get((seed+1)*700 + i)
				b.B[0] = byte(i)
				b.Release()
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Acquires != 8*500 {
		t.Errorf("Acquires = %d, want %d", st.Acquires, 8*500)
	}
	if st.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after drain, want 0", st.Outstanding())
	}
}

func TestClassStats(t *testing.T) {
	p := New()
	b := p.Get(300) // class 0 (512 B)
	cs := p.ClassStats()
	if len(cs) != NumClasses {
		t.Fatalf("ClassStats len %d, want %d", len(cs), NumClasses)
	}
	if cs[0].Size != MinClassBytes || cs[0].Acquires != 1 || cs[0].News != 1 {
		t.Errorf("class 0 stats = %+v", cs[0])
	}
	b.Release()
}

// The pool's whole point: a warm Get/Release cycle performs no allocator
// work.
func TestGetReleaseZeroAlloc(t *testing.T) {
	p := New()
	p.Get(4096).Release() // warm the class
	avg := testing.AllocsPerRun(1000, func() {
		b := p.Get(4096)
		b.B[0] = 1
		b.Release()
	})
	if avg != 0 {
		t.Errorf("warm Get/Release allocates %.2f per op, want 0", avg)
	}
}

func BenchmarkGetRelease(b *testing.B) {
	p := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			buf := p.Get(32 << 10)
			buf.B[0] = 1
			buf.Release()
		}
	})
}
