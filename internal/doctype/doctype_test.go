package doctype

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFromContentType(t *testing.T) {
	tests := []struct {
		name string
		ct   string
		want Class
	}{
		{"image gif", "image/gif", Image},
		{"image jpeg params", "image/jpeg; quality=80", Image},
		{"html", "text/html", HTML},
		{"html charset", "text/html; charset=ISO-8859-1", HTML},
		{"plain text", "text/plain", HTML},
		{"audio mpeg", "audio/mpeg", MultiMedia},
		{"video mpeg", "video/mpeg", MultiMedia},
		{"video quicktime", "video/quicktime", MultiMedia},
		{"postscript", "application/postscript", Application},
		{"pdf", "application/pdf", Application},
		{"zip", "application/zip", Application},
		{"octet stream", "application/octet-stream", Application},
		{"xhtml is html", "application/xhtml+xml", HTML},
		{"xml is html", "application/xml", HTML},
		{"flash is media", "application/x-shockwave-flash", MultiMedia},
		{"realmedia is media", "application/vnd.rn-realmedia", MultiMedia},
		{"uppercase", "IMAGE/GIF", Image},
		{"surrounding space", "  text/html ", HTML},
		{"empty", "", Unknown},
		{"no slash", "gibberish", Unknown},
		{"unknown major", "model/vrml", Unknown},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FromContentType(tt.ct); got != tt.want {
				t.Errorf("FromContentType(%q) = %v, want %v", tt.ct, got, tt.want)
			}
		})
	}
}

func TestExtensionOf(t *testing.T) {
	tests := []struct {
		name string
		url  string
		want string
	}{
		{"plain", "/images/logo.gif", "gif"},
		{"query stripped", "/doc.pdf?session=42", "pdf"},
		{"fragment stripped", "/page.html#top", "html"},
		{"no extension", "/images/logo", ""},
		{"trailing dot", "/weird.", ""},
		{"directory", "/a/b/", ""},
		{"root", "/", ""},
		{"uppercase folded", "/BIG.JPEG", "jpeg"},
		{"dots in path", "/v1.2/file.zip", "zip"},
		{"full url", "http://www.example.com/a/song.mp3", "mp3"},
		{"full url no path", "http://www.example.com", ""},
		{"host dots not ext", "http://cache.nlanr.net/", ""},
		{"empty", "", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExtensionOf(tt.url); got != tt.want {
				t.Errorf("ExtensionOf(%q) = %q, want %q", tt.url, got, tt.want)
			}
		})
	}
}

func TestFromExtension(t *testing.T) {
	tests := []struct {
		ext  string
		want Class
	}{
		{"gif", Image},
		{"jpeg", Image},
		{"png", Image},
		{"html", HTML},
		{"txt", HTML},
		{"tex", HTML},
		{"java", HTML},
		{"mp3", MultiMedia},
		{"mpeg", MultiMedia},
		{"mov", MultiMedia},
		{"ram", MultiMedia},
		{"ps", Application},
		{"pdf", Application},
		{"zip", Application},
		{"exe", Application},
		{"xyz", Unknown},
		{"", Unknown},
	}
	for _, tt := range tests {
		if got := FromExtension(tt.ext); got != tt.want {
			t.Errorf("FromExtension(%q) = %v, want %v", tt.ext, got, tt.want)
		}
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		name string
		ct   string
		url  string
		want Class
	}{
		{"content type wins", "image/gif", "/file.pdf", Image},
		{"extension fallback", "", "/file.pdf", Application},
		{"neither resolves", "", "/file", Other},
		{"unknown extension", "", "/file.xyz", Other},
		{"unknown ct falls back", "model/vrml", "/scene.mp3", MultiMedia},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.ct, tt.url); got != tt.want {
				t.Errorf("Classify(%q, %q) = %v, want %v", tt.ct, tt.url, got, tt.want)
			}
		})
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range Classes {
		got, ok := ParseClass(c.Short())
		if !ok || got != c {
			t.Errorf("ParseClass(%q) = %v, %v; want %v, true", c.Short(), got, ok, c)
		}
		got, ok = ParseClass(c.String())
		if !ok || got != c {
			t.Errorf("ParseClass(%q) = %v, %v; want %v, true", c.String(), got, ok, c)
		}
	}
	if _, ok := ParseClass("bogus"); ok {
		t.Error("ParseClass(bogus) succeeded, want failure")
	}
}

func TestClassStrings(t *testing.T) {
	seen := make(map[string]bool, NumClasses)
	for _, c := range Classes {
		if c == Unknown {
			t.Fatal("Classes must not contain Unknown")
		}
		s := c.String()
		if s == "Unknown" || s == "" {
			t.Errorf("class %d has bad String %q", c, s)
		}
		if seen[s] {
			t.Errorf("duplicate class name %q", s)
		}
		seen[s] = true
	}
	if Class(200).String() != "Unknown" {
		t.Error("out-of-range class should stringify as Unknown")
	}
}

// TestClassifyTotal checks the invariant that Classify never returns
// Unknown: every request must land in a reportable class.
func TestClassifyTotal(t *testing.T) {
	f := func(ct, url string) bool {
		return Classify(ct, url) != Unknown
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestExtensionOfNoSeparators checks that extracted extensions never
// contain path, query, or fragment separators.
func TestExtensionOfNoSeparators(t *testing.T) {
	f := func(url string) bool {
		ext := ExtensionOf(url)
		return !strings.ContainsAny(ext, "/?#.")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
