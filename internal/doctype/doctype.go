// Package doctype classifies web documents into the content classes used
// throughout the study: images, HTML/text, multi media, application, and
// other.
//
// Classification follows Section 2 of the paper: the MIME content type from
// the HTTP response header is authoritative; when no content type is
// recorded, the class is guessed from the file extension of the request URL.
// Plain-text formats such as .tex and .java are folded into the HTML class,
// mirroring the paper's treatment of text documents.
package doctype

import (
	"strings"
)

// Class identifies one of the document classes distinguished by the study.
type Class uint8

// The document classes, in the order the paper's tables list them.
const (
	// Unknown marks a record whose class has not been resolved yet. It is
	// the zero value and never appears in classified output; classification
	// maps unresolvable documents to Other.
	Unknown Class = iota
	// Image covers raster and vector image formats (.gif, .jpeg, .png, ...).
	Image
	// HTML covers markup and plain-text documents (.html, .txt, .tex, ...).
	HTML
	// MultiMedia covers audio and video formats (.mp3, .mpeg, .mov, ...).
	MultiMedia
	// Application covers binary application formats (.ps, .pdf, .zip, ...).
	Application
	// Other covers every document matching none of the classes above.
	Other
)

// NumClasses is the number of distinct classified classes (excluding
// Unknown). Arrays indexed by Class conventionally have length
// NumClasses+1 so that Class values can index them directly.
const NumClasses = 5

// Classes lists all classified classes in table order, for iteration.
var Classes = [NumClasses]Class{Image, HTML, MultiMedia, Application, Other}

// String returns the table heading used by the paper for the class.
func (c Class) String() string {
	switch c {
	case Image:
		return "Images"
	case HTML:
		return "HTML"
	case MultiMedia:
		return "Multi Media"
	case Application:
		return "Application"
	case Other:
		return "Other"
	default:
		return "Unknown"
	}
}

// Short returns a compact lowercase identifier for the class, suitable for
// CSV column names and command-line flags.
func (c Class) Short() string {
	switch c {
	case Image:
		return "image"
	case HTML:
		return "html"
	case MultiMedia:
		return "media"
	case Application:
		return "app"
	case Other:
		return "other"
	default:
		return "unknown"
	}
}

// ParseClass resolves a class from its Short or String form,
// case-insensitively. It returns Unknown and false for unrecognized names.
func ParseClass(s string) (Class, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "image", "images", "img":
		return Image, true
	case "html", "text":
		return HTML, true
	case "media", "multimedia", "multi media", "multi-media", "mm":
		return MultiMedia, true
	case "app", "application", "applications":
		return Application, true
	case "other":
		return Other, true
	default:
		return Unknown, false
	}
}

// Classify determines the document class from the response content type and
// the request URL. The content type wins when present; otherwise the class
// is guessed from the URL's file extension, as in Section 2 of the paper.
func Classify(contentType, url string) Class {
	if c := FromContentType(contentType); c != Unknown {
		return c
	}
	if c := FromExtension(ExtensionOf(url)); c != Unknown {
		return c
	}
	return Other
}

// FromContentType maps a MIME content type (possibly carrying parameters,
// e.g. "text/html; charset=utf-8") to a document class. It returns Unknown
// when the content type is empty or carries no class signal, so that the
// caller can fall back to extension-based classification.
func FromContentType(contentType string) Class {
	ct := strings.ToLower(strings.TrimSpace(contentType))
	if ct == "" {
		return Unknown
	}
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	slash := strings.IndexByte(ct, '/')
	if slash < 0 {
		return Unknown
	}
	major, minor := ct[:slash], ct[slash+1:]
	switch major {
	case "image":
		return Image
	case "text":
		return HTML
	case "audio", "video":
		return MultiMedia
	case "application":
		return classifyApplicationSubtype(minor)
	default:
		return Unknown
	}
}

// classifyApplicationSubtype refines the broad application/* MIME space.
// Streaming-media container subtypes served as application/* are treated as
// multi media; markup subtypes as HTML; the rest stay application.
func classifyApplicationSubtype(minor string) Class {
	switch minor {
	case "xhtml+xml", "xml":
		return HTML
	case "x-shockwave-flash", "vnd.rn-realmedia", "mp4", "ogg",
		"x-mplayer2", "vnd.ms-asf":
		return MultiMedia
	default:
		return Application
	}
}

// ExtensionOf extracts the lowercase file extension (without the dot) from
// a request URL, ignoring any query string or fragment. It returns "" when
// the last path segment has no extension.
func ExtensionOf(url string) string {
	// Strip scheme://host once so that dots in the host name are never
	// mistaken for an extension of a bare URL such as
	// "http://example.com/foo".
	if i := strings.Index(url, "://"); i >= 0 {
		rest := url[i+3:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			url = rest[j:]
		} else {
			return ""
		}
	}
	if i := strings.IndexAny(url, "?#"); i >= 0 {
		url = url[:i]
	}
	slash := strings.LastIndexByte(url, '/')
	segment := url
	if slash >= 0 {
		segment = url[slash+1:]
	}
	dot := strings.LastIndexByte(segment, '.')
	if dot < 0 || dot == len(segment)-1 {
		return ""
	}
	return strings.ToLower(segment[dot+1:])
}

// extensionClass maps known file extensions to document classes. The table
// merges the extension lists in Section 2 of the paper with the common
// long-tail extensions observed in proxy traces of the period.
var extensionClass = map[string]Class{
	// Images.
	"gif": Image, "jpg": Image, "jpeg": Image, "jpe": Image,
	"png": Image, "bmp": Image, "tif": Image, "tiff": Image,
	"ico": Image, "xbm": Image, "xpm": Image, "svg": Image,
	"webp": Image,

	// HTML and text; .tex/.java and friends are folded into HTML per the
	// paper.
	"html": HTML, "htm": HTML, "shtml": HTML, "xhtml": HTML,
	"txt": HTML, "text": HTML, "asc": HTML, "tex": HTML,
	"java": HTML, "c": HTML, "h": HTML, "cc": HTML, "cpp": HTML,
	"css": HTML, "js": HTML, "xml": HTML, "csv": HTML, "md": HTML,

	// Multi media: digital audio and video.
	"mp3": MultiMedia, "mp2": MultiMedia, "wav": MultiMedia,
	"au": MultiMedia, "aiff": MultiMedia, "aif": MultiMedia,
	"ram": MultiMedia, "ra": MultiMedia, "rm": MultiMedia,
	"mpeg": MultiMedia, "mpg": MultiMedia, "mpe": MultiMedia,
	"mp4": MultiMedia, "mov": MultiMedia, "qt": MultiMedia,
	"avi": MultiMedia, "asf": MultiMedia, "asx": MultiMedia,
	"wmv": MultiMedia, "wma": MultiMedia, "swf": MultiMedia,
	"mid": MultiMedia, "midi": MultiMedia, "ogg": MultiMedia,

	// Application documents.
	"ps": Application, "eps": Application, "pdf": Application,
	"doc": Application, "xls": Application, "ppt": Application,
	"rtf": Application, "dvi": Application,
	"zip": Application, "gz": Application, "tgz": Application,
	"tar": Application, "z": Application, "bz2": Application,
	"rar": Application, "arj": Application, "lha": Application,
	"exe": Application, "bin": Application, "dll": Application,
	"iso": Application, "rpm": Application, "deb": Application,
	"jar": Application, "class": Application, "cab": Application,
	"hqx": Application, "sit": Application, "dmg": Application,
}

// FromExtension maps a lowercase file extension (without dot) to a document
// class. It returns Unknown for extensions outside the known table so the
// caller can decide on a fallback.
func FromExtension(ext string) Class {
	if ext == "" {
		return Unknown
	}
	if c, ok := extensionClass[strings.ToLower(ext)]; ok {
		return c
	}
	return Unknown
}
