package cluster

import (
	"fmt"
	"math/rand"
	"net/url"
	"testing"
)

// names returns n deterministic node names node0..node{n-1}.
func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node%d", i)
	}
	return out
}

// keys returns a deterministic corpus of routing keys shaped like real
// trace paths.
func keys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	exts := []string{".html", ".gif", ".jpg", ".mpg", ".pdf", ".cgi", ""}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("/dir%d/doc%d%s", rng.Intn(40), i, exts[rng.Intn(len(exts))])
	}
	return out
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty node set: want error")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name: want error")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate node name: want error")
	}
}

// TestRingDeterministic pins rebalance determinism: the same node set in
// any order builds the identical layout, and routing is stable across
// independently constructed rings (as it must be — every fleet member
// and every client builds its own).
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(5000, 1) {
		if got, want := b.Owner(k), a.Owner(k); got != want {
			t.Fatalf("Owner(%q) differs across identical rings: %q vs %q", k, got, want)
		}
	}
}

// TestRingBalance checks virtual nodes spread load roughly evenly: with
// DefaultReplicas every node's share of a large key corpus stays within
// 2x of fair.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		r, err := NewRing(names(n), DefaultReplicas)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int, n)
		corpus := keys(20000, 42)
		for _, k := range corpus {
			counts[r.Owner(k)]++
		}
		fair := float64(len(corpus)) / float64(n)
		for node, c := range counts {
			if float64(c) < fair/2 || float64(c) > fair*2 {
				t.Errorf("N=%d: node %s owns %d keys, fair share %.0f", n, node, c, fair)
			}
		}
		if len(counts) != n {
			t.Errorf("N=%d: only %d nodes own keys", n, len(counts))
		}
	}
}

// TestRingRemapFraction is the consistent-hashing property: growing an
// N-node ring by one node remaps roughly 1/(N+1) of the keys, and every
// remapped key moves TO the new node — no key migrates between two
// surviving nodes. Shrinking is the mirror image. Table over N∈{2,3,8},
// fixed seeds.
func TestRingRemapFraction(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			small, err := NewRing(names(n), DefaultReplicas)
			if err != nil {
				t.Fatal(err)
			}
			grown, err := NewRing(append(names(n), "extra"), DefaultReplicas)
			if err != nil {
				t.Fatal(err)
			}
			corpus := keys(20000, int64(100+n))
			moved := 0
			for _, k := range corpus {
				before, after := small.Owner(k), grown.Owner(k)
				if before == after {
					continue
				}
				moved++
				if after != "extra" {
					t.Fatalf("key %q moved %s→%s, not to the new node", k, before, after)
				}
			}
			frac := float64(moved) / float64(len(corpus))
			want := 1 / float64(n+1)
			// Generous bounds: virtual-node variance is real, but the
			// fraction must be in the right regime — far below "rehash
			// everything" (which would remap ~n/(n+1)).
			if frac < want/2 || frac > want*2 {
				t.Errorf("N=%d→%d remapped %.3f of keys, want ≈%.3f", n, n+1, frac, want)
			}
			// Shrink back: removing "extra" must restore the original
			// assignment exactly (the layout is a pure function of the
			// membership set).
			shrunk, err := NewRing(names(n), DefaultReplicas)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range corpus {
				if shrunk.Owner(k) != small.Owner(k) {
					t.Fatalf("shrink did not restore assignment for %q", k)
				}
			}
		})
	}
}

func TestRingOwnerBytes(t *testing.T) {
	r, err := NewRing(names(5), 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(1000, 7) {
		if got, want := r.OwnerBytes([]byte(k)), r.Owner(k); got != want {
			t.Fatalf("OwnerBytes(%q)=%q, Owner=%q", k, got, want)
		}
	}
}

func TestRingAccessors(t *testing.T) {
	r, err := NewRing([]string{"b", "a"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Nodes() = %v, want sorted [a b]", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d", r.Len())
	}
	if r.Replicas() != DefaultReplicas {
		t.Fatalf("Replicas() = %d, want default %d", r.Replicas(), DefaultReplicas)
	}
}

// TestRouteKey pins the canonical routing-key contract: the same document
// yields the same key whether it arrives as a trace's absolute URL, a
// proxy's rewritten absolute URL (different host/port), or a parsed
// request URL.
func TestRouteKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://origin.example/a/b.html", "/a/b.html"},
		{"http://127.0.0.1:49152/a/b.html", "/a/b.html"},
		{"https://origin.example:8080/a/b.html?x=1", "/a/b.html?x=1"},
		{"http://origin.example", "/"},
		{"/plain/path.gif", "/plain/path.gif"},
		{"", "/"},
	}
	for _, c := range cases {
		if got := RouteKey(c.in); got != c.want {
			t.Errorf("RouteKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	for _, c := range cases {
		if c.in == "" || c.in[0] == '/' {
			continue
		}
		u, err := url.Parse(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if got := RouteKeyURL(u); got != c.want {
			t.Errorf("RouteKeyURL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
