package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleTopology = `{
  "replicas": 64,
  "nodes": [
    {"name": "n1", "url": "http://127.0.0.1:8081", "admin": "http://127.0.0.1:9081", "capacity": "64MB", "policy": "lru"},
    {"name": "n2", "url": "http://127.0.0.1:8082", "admin": "http://127.0.0.1:9082", "capacity": "64MB"},
    {"name": "n3", "url": "http://127.0.0.1:8083"}
  ],
  "parents": [
    {"name": "parent", "url": "http://127.0.0.1:8090", "capacity": "256MB", "policy": "gdsf"}
  ]
}`

func TestParseTopology(t *testing.T) {
	topo, err := ParseTopology([]byte(sampleTopology))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 3 || len(topo.Parents) != 1 {
		t.Fatalf("got %d nodes, %d parents", len(topo.Nodes), len(topo.Parents))
	}
	r, err := topo.Ring()
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas() != 64 {
		t.Fatalf("ring replicas = %d, want 64 from the file", r.Replicas())
	}
	if n := topo.Node("parent"); n == nil || n.Policy != "gdsf" {
		t.Fatalf("Node(parent) = %+v", n)
	}
	if topo.Node("ghost") != nil {
		t.Fatal("Node(ghost) should be nil")
	}
	cap1, err := topo.Node("n1").CapacityBytes(0)
	if err != nil || cap1 != 64<<20 {
		t.Fatalf("n1 capacity = %d, %v", cap1, err)
	}
	cap3, err := topo.Node("n3").CapacityBytes(123)
	if err != nil || cap3 != 123 {
		t.Fatalf("n3 default capacity = %d, %v", cap3, err)
	}
	if _, err := topo.Node("n3").PolicyFactory(); err != nil {
		t.Fatalf("default policy factory: %v", err)
	}
}

func TestTopologyPeerURLs(t *testing.T) {
	topo, err := ParseTopology([]byte(sampleTopology))
	if err != nil {
		t.Fatal(err)
	}
	peers, err := topo.PeerURLs("n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("got %d peers, want 2", len(peers))
	}
	if _, ok := peers["n2"]; ok {
		t.Fatal("self listed among its own peers")
	}
	if peers["n1"].Host != "127.0.0.1:8081" {
		t.Fatalf("n1 peer URL = %v", peers["n1"])
	}
	if _, err := topo.PeerURLs("nope"); err == nil {
		t.Fatal("unknown self: want error")
	}
}

func TestTopologyValidation(t *testing.T) {
	bad := []string{
		`{}`,
		`{"nodes":[]}`,
		`{"nodes":[{"name":"","url":"http://x"}]}`,
		`{"nodes":[{"name":"a","url":"http://x"},{"name":"a","url":"http://y"}]}`,
		`{"nodes":[{"name":"a"}]}`,
		`{"nodes":[{"name":"a","url":"http://x","capacity":"lots"}]}`,
		`{"nodes":[{"name":"a","url":"http://x","policy":"magic"}]}`,
		`{"nodes":[{"name":"a","url":"http://x"}],"parents":[{"name":"a","url":"http://y"}]}`,
		`{"replicas":-1,"nodes":[{"name":"a","url":"http://x"}]}`,
		`not json`,
	}
	for _, doc := range bad {
		if _, err := ParseTopology([]byte(doc)); err == nil {
			t.Errorf("ParseTopology(%s): want error", doc)
		}
	}
}

func TestLoadTopology(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	if err := os.WriteFile(path, []byte(sampleTopology), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTopology(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTopology(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestFromPeerList(t *testing.T) {
	peers, err := FromPeerList("n1=http://127.0.0.1:8081, n2=http://127.0.0.1:8082")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers["n2"].Host != "127.0.0.1:8082" {
		t.Fatalf("peers = %v", peers)
	}
	for _, bad := range []string{"", "justaname", "a=", "=http://x", "a=http://x,a=http://y", "a=notaurl"} {
		if _, err := FromPeerList(bad); err == nil {
			t.Errorf("FromPeerList(%q): want error", bad)
		}
	}
}
