// Package cluster turns the single caching proxy into a horizontally
// scalable fleet: documents are assigned to peer nodes by consistent
// hashing, so every node in the cluster — and every client driving it —
// agrees on which node owns which document without any coordination.
//
// The package holds the pieces both sides of the sim/live parity story
// share: the hash ring (Ring), the canonical routing key every component
// derives from a URL (RouteKey), and the topology file format
// (Topology) that cmd/wcproxy serves live, cmd/wcload drives, and
// internal/hierarchy replays offline. Keeping them in one place is what
// makes the parity harness honest — the simulator and the fleet route
// with literally the same code. See docs/CLUSTER.md.
package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"webcachesim/internal/trace"
)

// DefaultReplicas is the number of virtual nodes each peer contributes to
// the ring when the topology does not say otherwise. 128 points per node
// keeps the expected per-node load share within a few percent of 1/N
// while the ring stays small enough to rebuild on every membership
// change.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over a set of named nodes.
// Each node contributes Replicas virtual points; a key is owned by the
// node whose point follows the key's hash clockwise. The layout is a pure
// function of the node names and the replica count — trace.Hash64 is
// stable across processes — so every builder of the same ring routes
// identically, which the routing contract (and the rebalance-determinism
// test) pins.
//
// A Ring is never mutated after New: membership changes build a new Ring
// and swap it in atomically (see proxy.Server.UpdateCluster).
type Ring struct {
	points   []ringPoint
	nodes    []string // sorted unique node names
	replicas int
}

// ringPoint is one virtual node: a position on the hash circle and the
// index of the owning node in Ring.nodes.
type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds a ring from the given node names. Names must be
// non-empty and unique; order does not matter (the layout is derived from
// the sorted set). replicas is the number of virtual points per node
// (DefaultReplicas when <= 0).
func NewRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n)
		}
	}
	r := &Ring{
		points:   make([]ringPoint, 0, len(sorted)*replicas),
		nodes:    sorted,
		replicas: replicas,
	}
	for ni, name := range sorted {
		for v := 0; v < replicas; v++ {
			h := trace.Hash64(name + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, node: int32(ni)})
		}
	}
	// Sort by position; break hash collisions by node index (node names
	// are sorted, so the tie-break is as deterministic as the layout).
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node that owns key. The key should be the canonical
// routing key (see RouteKey); hashing anything else still works but
// breaks the cross-component agreement the routing contract promises.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.ownerIndex(trace.Hash64(key))]
}

// OwnerBytes is Owner for a key assembled in a byte buffer, without the
// string conversion (trace.Hash64Bytes is bit-identical to trace.Hash64).
func (r *Ring) OwnerBytes(key []byte) string {
	return r.nodes[r.ownerIndex(trace.Hash64Bytes(key))]
}

// ownerIndex finds the first virtual point at or after h, wrapping to the
// ring's start past the last point.
func (r *Ring) ownerIndex(h uint64) int32 {
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return pts[i].node
}

// Nodes returns the ring's node names in sorted order. The slice is a
// copy.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Replicas returns the virtual-point count per node.
func (r *Ring) Replicas() int { return r.replicas }

// RouteKey extracts the canonical routing key from an absolute URL or a
// path: the escaped path plus, when present, "?" and the raw query. All
// routing decisions — the proxy picking a peer, wcload predicting an
// owner, the hierarchy simulator replaying offline — hash exactly this
// form, so a document has one owner no matter which component asks.
//
// The scheme and host are deliberately excluded: the live fleet keys its
// caches on absolute URLs that embed ephemeral loopback ports, while
// traces record the origin's real host; the path is the part both sides
// share.
func RouteKey(s string) string {
	if i := strings.Index(s, "://"); i >= 0 {
		rest := s[i+3:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			return rest[j:]
		}
		return "/"
	}
	if s == "" {
		return "/"
	}
	return s
}

// RouteKeyURL is RouteKey for a parsed URL, built from the same escaped
// path + raw query form RouteKey slices out of an absolute URL string.
func RouteKeyURL(u *url.URL) string {
	p := u.EscapedPath()
	if p == "" {
		p = "/"
	}
	if u.RawQuery != "" {
		return p + "?" + u.RawQuery
	}
	return p
}
