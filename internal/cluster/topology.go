package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"strings"

	"webcachesim/internal/policy"
	"webcachesim/internal/units"
)

// Topology describes a cache fleet in one JSON file that every component
// consumes: cmd/wcproxy reads it to learn its peers and cache sizing,
// cmd/wcload reads it to drive and reconcile the whole fleet, and
// internal/hierarchy reads it to replay the identical layout offline for
// the sim/live parity check. See docs/CLUSTER.md for the format.
type Topology struct {
	// Replicas is the virtual-node count per peer (DefaultReplicas when
	// omitted). All consumers of one topology must see the same value or
	// they disagree on ownership — which is why it lives in the file, not
	// in per-process flags.
	Replicas int `json:"replicas,omitempty"`
	// Nodes are the leaf cache peers forming the consistent-hash ring.
	Nodes []Node `json:"nodes"`
	// Parents are optional upper-level caches behind the fleet, nearest
	// first: a fleet miss is forwarded to Parents[0], whose miss goes to
	// Parents[1], and so on to the origin. The live fleet chains them via
	// the proxy's -parent forwarding; the simulator stacks them as
	// hierarchy levels.
	Parents []Node `json:"parents,omitempty"`
}

// Node is one cache process in a Topology.
type Node struct {
	// Name identifies the node on the ring; must be unique within its
	// list. Ring layout is a function of the leaf names, so renaming a
	// node rehomes ~1/N of the documents even if its URL is unchanged.
	Name string `json:"name"`
	// URL is the node's serving address (scheme + host[:port]).
	URL string `json:"url"`
	// Admin is the node's admin address serving /metrics and /stats;
	// optional, used by wcload's reconciliation.
	Admin string `json:"admin,omitempty"`
	// Capacity is the node's cache capacity ("64MB", "1GB", plain bytes).
	Capacity string `json:"capacity,omitempty"`
	// Policy is the node's replacement policy spec ("lru", "gdsf",
	// "gdstar:p", ...); "lru" when omitted.
	Policy string `json:"policy,omitempty"`
}

// ParseTopology decodes and validates a topology document.
func ParseTopology(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("cluster: parsing topology: %w", err)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTopology reads and parses a topology file.
func LoadTopology(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading topology: %w", err)
	}
	t, err := ParseTopology(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return t, nil
}

func (t *Topology) validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("cluster: topology has no nodes")
	}
	if t.Replicas < 0 {
		return fmt.Errorf("cluster: negative replicas %d", t.Replicas)
	}
	seen := make(map[string]bool, len(t.Nodes)+len(t.Parents))
	check := func(kind string, nodes []Node) error {
		for i, n := range nodes {
			if n.Name == "" {
				return fmt.Errorf("cluster: %s[%d] has no name", kind, i)
			}
			if seen[n.Name] {
				return fmt.Errorf("cluster: duplicate node name %q", n.Name)
			}
			seen[n.Name] = true
			if n.URL == "" {
				return fmt.Errorf("cluster: node %q has no url", n.Name)
			}
			if _, err := url.Parse(n.URL); err != nil {
				return fmt.Errorf("cluster: node %q url: %w", n.Name, err)
			}
			if n.Capacity != "" {
				if _, err := units.ParseBytes(n.Capacity); err != nil {
					return fmt.Errorf("cluster: node %q capacity: %w", n.Name, err)
				}
			}
			if n.Policy != "" {
				if _, err := policy.ParseSpec(n.Policy); err != nil {
					return fmt.Errorf("cluster: node %q policy: %w", n.Name, err)
				}
			}
		}
		return nil
	}
	if err := check("nodes", t.Nodes); err != nil {
		return err
	}
	return check("parents", t.Parents)
}

// Ring builds the topology's consistent-hash ring over the leaf nodes.
func (t *Topology) Ring() (*Ring, error) {
	names := make([]string, len(t.Nodes))
	for i, n := range t.Nodes {
		names[i] = n.Name
	}
	return NewRing(names, t.Replicas)
}

// Node returns the named leaf or parent node, or nil.
func (t *Topology) Node(name string) *Node {
	for i := range t.Nodes {
		if t.Nodes[i].Name == name {
			return &t.Nodes[i]
		}
	}
	for i := range t.Parents {
		if t.Parents[i].Name == name {
			return &t.Parents[i]
		}
	}
	return nil
}

// PeerURLs returns the serving URLs of every leaf except self, keyed by
// node name — the map the proxy's cluster config wants. self must be a
// leaf node's name.
func (t *Topology) PeerURLs(self string) (map[string]*url.URL, error) {
	found := false
	peers := make(map[string]*url.URL, len(t.Nodes)-1)
	for _, n := range t.Nodes {
		if n.Name == self {
			found = true
			continue
		}
		u, err := url.Parse(n.URL)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %q url: %w", n.Name, err)
		}
		peers[n.Name] = u
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not a node in the topology", self)
	}
	return peers, nil
}

// CapacityBytes parses the node's capacity, or returns def when unset.
func (n *Node) CapacityBytes(def int64) (int64, error) {
	if n.Capacity == "" {
		return def, nil
	}
	return units.ParseBytes(n.Capacity)
}

// PolicyFactory builds the node's eviction-policy factory ("lru" when
// unset).
func (n *Node) PolicyFactory() (policy.Factory, error) {
	if n.Policy == "" {
		return policy.NewFactory(policy.Spec{Scheme: "lru"})
	}
	spec, err := policy.ParseSpec(n.Policy)
	if err != nil {
		return policy.Factory{}, err
	}
	return policy.NewFactory(spec)
}

// FromPeerList builds a name→URL peer map from "name=url,name=url" flag
// syntax — the -peers alternative to a topology file. Unlike PeerURLs,
// the list names only the *other* nodes, so self does not appear in it.
func FromPeerList(list string) (map[string]*url.URL, error) {
	peers := make(map[string]*url.URL)
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		if !ok || name == "" || rawURL == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want name=url)", part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", name)
		}
		u, err := url.Parse(rawURL)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q url: %w", name, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q url %q is not absolute", name, rawURL)
		}
		peers[name] = u
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return peers, nil
}
