package sketch

import (
	"fmt"
	"math"
)

// Bloom is a Bloom filter over string keys. The bounded-memory
// characterizer uses it to detect first occurrences of documents, and the
// TinyLFU admission filter uses it as the "doorkeeper" that absorbs
// one-hit wonders before they reach the heavy-hitter table. False
// positives make a repeated key look new with probability ≈ the
// configured rate; there are no false negatives.
type Bloom struct {
	bits   []uint64
	mask   uint64
	hashes int
	added  int64
}

// NewBloom sizes a filter for the expected number of items at the target
// false-positive rate.
func NewBloom(expectedItems int64, falsePositiveRate float64) (*Bloom, error) {
	if expectedItems <= 0 {
		return nil, fmt.Errorf("sketch: bloom expected items %d must be positive", expectedItems)
	}
	if falsePositiveRate <= 0 || falsePositiveRate >= 1 {
		return nil, fmt.Errorf("sketch: bloom fp rate %v out of (0, 1)", falsePositiveRate)
	}
	// Optimal bits: m = -n ln p / (ln 2)^2, rounded up to a power of two
	// so indexing is a mask.
	mBits := float64(expectedItems) * -math.Log(falsePositiveRate) / (math.Ln2 * math.Ln2)
	words := uint64(1)
	for float64(words*64) < mBits {
		words <<= 1
	}
	k := int(math.Round(float64(words*64) / float64(expectedItems) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Bloom{
		bits:   make([]uint64, words),
		mask:   words*64 - 1,
		hashes: k,
	}, nil
}

// Add inserts a key.
func (b *Bloom) Add(key string) {
	h1, h2 := b.twoHashes(key)
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) & b.mask
		b.bits[pos>>6] |= 1 << (pos & 63)
	}
	b.added++
}

// Contains reports whether key may have been added (false positives
// possible, false negatives not).
func (b *Bloom) Contains(key string) bool {
	h1, h2 := b.twoHashes(key)
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) & b.mask
		if b.bits[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// AddIfNew inserts key and reports whether it was (probably) absent — the
// one-pass first-occurrence test.
func (b *Bloom) AddIfNew(key string) bool {
	if b.Contains(key) {
		return false
	}
	b.Add(key)
	return true
}

// Added returns the number of Add calls since creation or the last Reset.
func (b *Bloom) Added() int64 { return b.added }

// Reset clears every bit and the Added counter, keeping the sizing. The
// TinyLFU admission filter calls it at each aging window so stale
// first-occurrence evidence does not accumulate forever.
func (b *Bloom) Reset() {
	clear(b.bits)
	b.added = 0
}

// twoHashes derives the double-hashing pair from one 64-bit hash.
func (b *Bloom) twoHashes(key string) (uint64, uint64) {
	h := hash64str(key)
	h1 := h
	h2 := mix64(h ^ 0x9e3779b97f4a7c15)
	h2 |= 1 // h2 must be odd so the probe sequence covers the table
	return h1, h2
}
