// Package sketch provides the probabilistic data structures shared by the
// bounded-memory workload characterizer and the admission layer:
// HyperLogLog for distinct counting, reservoir sampling for quantile
// estimation, a Bloom filter for one-pass first-occurrence tests (and the
// TinyLFU doorkeeper), and space-saving heavy-hitter counting (and the
// TinyLFU frequency table). They let analyze.CharacterizeApprox process
// traces far larger than memory while reporting the same per-class
// statistics as the exact pass, within estimation error, and give
// admission.TinyLFU O(1)-memory frequency estimates.
package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HyperLogLog estimates the number of distinct items in a stream using
// 2^precision one-byte registers (Flajolet et al., with the standard
// small-range correction). The relative standard error is ≈1.04/√m.
type HyperLogLog struct {
	registers []uint8
	precision uint8
}

// NewHyperLogLog creates an estimator with the given precision
// (4 ≤ precision ≤ 16; 14 gives ≈0.8% error in 16 KiB).
func NewHyperLogLog(precision uint8) (*HyperLogLog, error) {
	if precision < 4 || precision > 16 {
		return nil, fmt.Errorf("sketch: hll precision %d out of [4, 16]", precision)
	}
	return &HyperLogLog{
		registers: make([]uint8, 1<<precision),
		precision: precision,
	}, nil
}

// AddString incorporates one item identified by a string key.
func (h *HyperLogLog) AddString(s string) {
	h.AddHash(hash64str(s))
}

// AddHash incorporates one item by its 64-bit hash.
func (h *HyperLogLog) AddHash(x uint64) {
	idx := x >> (64 - h.precision)
	rest := x<<h.precision | 1<<(h.precision-1) // avoid rank 0 on zero rest
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the estimated distinct count.
func (h *HyperLogLog) Estimate() int64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alphaFor(len(h.registers)) * m * m / sum
	// Small-range correction: linear counting while registers are sparse.
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return int64(est + 0.5)
}

// Merge folds another sketch of the same precision into h.
func (h *HyperLogLog) Merge(other *HyperLogLog) error {
	if h.precision != other.precision {
		return fmt.Errorf("sketch: merge precision mismatch %d vs %d", h.precision, other.precision)
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

func alphaFor(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// hash64str is the 64-bit FNV-1a hash, finalized with a strong mixer so
// sequential keys spread across registers.
func hash64str(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
