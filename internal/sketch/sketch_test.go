package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHLLPrecisionBounds(t *testing.T) {
	if _, err := NewHyperLogLog(3); err == nil {
		t.Error("precision 3 accepted")
	}
	if _, err := NewHyperLogLog(17); err == nil {
		t.Error("precision 17 accepted")
	}
	if _, err := NewHyperLogLog(14); err != nil {
		t.Errorf("precision 14 rejected: %v", err)
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{10, 1000, 50_000, 500_000} {
		h, err := NewHyperLogLog(14)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			h.AddString(fmt.Sprintf("item-%d", i))
		}
		got := float64(h.Estimate())
		relErr := math.Abs(got-float64(n)) / float64(n)
		// 1.04/sqrt(2^14) ≈ 0.8%; allow 4 sigma.
		if relErr > 0.033 {
			t.Errorf("n=%d: estimate %v, relative error %v", n, got, relErr)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h, err := NewHyperLogLog(12)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 100; round++ {
		for i := 0; i < 100; i++ {
			h.AddString(fmt.Sprintf("dup-%d", i))
		}
	}
	got := h.Estimate()
	if got < 90 || got > 110 {
		t.Errorf("estimate %d for 100 distinct items added 100×", got)
	}
}

func TestHLLMerge(t *testing.T) {
	a, err := NewHyperLogLog(12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHyperLogLog(12)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping sets: |A ∪ B| = 15000.
	for i := 0; i < 10_000; i++ {
		a.AddString(fmt.Sprintf("x-%d", i))
	}
	for i := 5_000; i < 15_000; i++ {
		b.AddString(fmt.Sprintf("x-%d", i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := float64(a.Estimate())
	if math.Abs(got-15_000)/15_000 > 0.06 {
		t.Errorf("merged estimate %v, want ≈15000", got)
	}
	c, err := NewHyperLogLog(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("precision mismatch accepted")
	}
}

// Property: estimate is monotone non-decreasing under additions.
func TestHLLMonotoneProperty(t *testing.T) {
	h, err := NewHyperLogLog(10)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	f := func(key string) bool {
		h.AddString(key)
		est := h.Estimate()
		ok := est >= prev
		prev = est
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestReservoirExactBelowCapacity(t *testing.T) {
	r, err := NewReservoir(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 50 {
		t.Errorf("Seen = %d", r.Seen())
	}
	if got := r.Median(); got != 25.5 {
		t.Errorf("median = %v, want exact 25.5 below capacity", got)
	}
	if got := r.Mean(); got != 25.5 {
		t.Errorf("mean = %v, want 25.5", got)
	}
}

func TestReservoirQuantilesApproximate(t *testing.T) {
	r, err := NewReservoir(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	n := 200_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
		r.Add(xs[i])
	}
	sort.Float64s(xs)
	trueMedian := xs[n/2]
	got := r.Median()
	if math.Abs(got-trueMedian)/trueMedian > 0.08 {
		t.Errorf("median estimate %v, true %v", got, trueMedian)
	}
	// Mean and CoV are exact regardless of sampling.
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if math.Abs(r.Mean()-sum/float64(n)) > 1e-6 {
		t.Errorf("mean %v, want %v", r.Mean(), sum/float64(n))
	}
	if r.Seen() != int64(n) {
		t.Errorf("Seen = %d", r.Seen())
	}
}

// Property: the reservoir keeps a genuinely uniform sample — every
// position of a long stream is retained with probability ≈ cap/n.
func TestReservoirUniformity(t *testing.T) {
	const (
		capacity = 100
		n        = 10_000
		trials   = 300
	)
	firstHalf := 0
	for trial := 0; trial < trials; trial++ {
		r, err := NewReservoir(capacity, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			r.Add(float64(i))
		}
		for _, x := range r.sample {
			if x < n/2 {
				firstHalf++
			}
		}
	}
	frac := float64(firstHalf) / float64(trials*capacity)
	if frac < 0.46 || frac > 0.54 {
		t.Errorf("first-half retention %v, want ≈0.5 (uniformity broken)", frac)
	}
}
