package sketch

import (
	"fmt"
	"sort"

	"webcachesim/internal/container/pqueue"
)

// SpaceSaving tracks the k most frequent items of a stream with bounded
// error (Metwally et al.): when a new item arrives at a full table, it
// replaces the current minimum and inherits its count as the error bound.
// The characterizer uses it to recover the head of the document-popularity
// distribution, from which the Zipf index α is fitted; the TinyLFU
// admission filter uses it as the frequency table behind its
// admit-if-more-popular-than-the-victim test, aged with Halve.
//
// Entries are kept in an indexed min-heap, so Add is O(log k).
type SpaceSaving struct {
	entries map[string]*pqueue.Item[*ssEntry]
	queue   pqueue.Queue[*ssEntry]
	cap     int
}

type ssEntry struct {
	key   string
	count int64
	err   int64
}

// Counter is one reported heavy hitter.
type Counter struct {
	// Key identifies the item.
	Key string
	// Count is the estimated frequency (an overestimate by at most Err).
	Count int64
	// Err bounds the overestimation.
	Err int64
}

// NewSpaceSaving creates a tracker for the top ≈capacity items.
func NewSpaceSaving(capacity int) (*SpaceSaving, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sketch: space-saving capacity %d must be positive", capacity)
	}
	return &SpaceSaving{
		entries: make(map[string]*pqueue.Item[*ssEntry], capacity),
		cap:     capacity,
	}, nil
}

// Add counts one occurrence of key.
func (s *SpaceSaving) Add(key string) {
	if item, ok := s.entries[key]; ok {
		item.Value.count++
		s.queue.Update(item, float64(item.Value.count))
		return
	}
	if len(s.entries) < s.cap {
		e := &ssEntry{key: key, count: 1}
		s.entries[key] = s.queue.Push(e, 1)
		return
	}
	victim, err := s.queue.PopMin()
	if err != nil {
		// Unreachable: cap > 0 implies a non-empty queue here.
		return
	}
	delete(s.entries, victim.Value.key)
	e := &ssEntry{key: key, count: victim.Value.count + 1, err: victim.Value.count}
	s.entries[key] = s.queue.Push(e, float64(e.count))
}

// Top returns up to n heavy hitters ordered by descending estimated
// count.
func (s *SpaceSaving) Top(n int) []Counter {
	out := make([]Counter, 0, len(s.entries))
	for _, item := range s.entries {
		e := item.Value
		out = append(out, Counter{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Count returns the estimated frequency of key and whether it is
// currently tracked. Untracked keys report (0, false); their true count
// is at most the current minimum in the table.
func (s *SpaceSaving) Count(key string) (int64, bool) {
	item, ok := s.entries[key]
	if !ok {
		return 0, false
	}
	return item.Value.count, true
}

// Halve ages the table by halving every count and error bound, dropping
// entries whose count reaches zero. Periodic halving turns lifetime
// frequencies into an exponentially decayed estimate, so a formerly hot
// document stops outranking fresh arrivals within a few windows.
//
// The heap is updated in sorted key order, not map order: among entries
// tied at the minimum count, which one Add's replacement step picks
// depends on the heap's internal layout, and layout is a function of the
// update sequence. Randomized map iteration here would make that pick —
// and therefore TinyLFU admission decisions — vary between identical
// runs, violating the simulator's determinism boundary.
func (s *SpaceSaving) Halve() {
	keys := make([]string, 0, len(s.entries))
	for key := range s.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		item := s.entries[key]
		e := item.Value
		e.count /= 2
		e.err /= 2
		if e.count == 0 {
			s.queue.Remove(item)
			delete(s.entries, key)
			continue
		}
		s.queue.Update(item, float64(e.count))
	}
}

// Len returns the number of tracked items.
func (s *SpaceSaving) Len() int { return len(s.entries) }
