package sketch

import (
	"fmt"
	"math/rand"

	"webcachesim/internal/stats"
)

// Reservoir maintains a uniform random sample of a stream of float64
// observations (Vitter's algorithm R) together with exact streaming
// moments, so mean and CoV are exact while quantiles come from the
// sample.
type Reservoir struct {
	sample  []float64
	cap     int
	seen    int64
	rng     *rand.Rand
	moments stats.Moments
}

// NewReservoir creates a reservoir holding up to capacity samples, seeded
// for reproducibility.
func NewReservoir(capacity int, seed int64) (*Reservoir, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sketch: reservoir capacity %d must be positive", capacity)
	}
	return &Reservoir{
		sample: make([]float64, 0, capacity),
		cap:    capacity,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Add incorporates one observation.
func (r *Reservoir) Add(x float64) {
	r.seen++
	r.moments.Add(x)
	if len(r.sample) < r.cap {
		r.sample = append(r.sample, x)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.sample[j] = x
	}
}

// Seen returns the number of observations.
func (r *Reservoir) Seen() int64 { return r.seen }

// Mean returns the exact stream mean.
func (r *Reservoir) Mean() float64 { return r.moments.Mean() }

// Sum returns the exact stream sum.
func (r *Reservoir) Sum() float64 { return r.moments.Sum() }

// CoV returns the exact stream coefficient of variation.
func (r *Reservoir) CoV() float64 { return r.moments.CoV() }

// Quantile estimates the q-quantile from the sample.
func (r *Reservoir) Quantile(q float64) float64 {
	return stats.Quantile(r.sample, q)
}

// Median estimates the stream median from the sample.
func (r *Reservoir) Median() float64 { return r.Quantile(0.5) }
