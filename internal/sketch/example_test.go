package sketch_test

import (
	"fmt"

	"webcachesim/internal/sketch"
)

// A Bloom filter answers "have I seen this key before?" in constant
// memory: AddIfNew is the one-pass first-occurrence test, and Reset
// starts a fresh observation window.
func ExampleBloom() {
	b, err := sketch.NewBloom(1000, 0.01)
	if err != nil {
		panic(err)
	}
	fmt.Println("first /a:", b.AddIfNew("/a"))
	fmt.Println("second /a:", b.AddIfNew("/a"))
	fmt.Println("contains /a:", b.Contains("/a"))
	b.Reset()
	fmt.Println("after reset contains /a:", b.Contains("/a"))
	// Output:
	// first /a: true
	// second /a: false
	// contains /a: true
	// after reset contains /a: false
}

// SpaceSaving keeps approximate counts for the hottest keys in a bounded
// table; Halve ages them so old popularity decays away.
func ExampleSpaceSaving() {
	ss, err := sketch.NewSpaceSaving(8)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 6; i++ {
		ss.Add("/hot")
	}
	ss.Add("/cold")
	for _, c := range ss.Top(2) {
		fmt.Printf("%s count=%d err=%d\n", c.Key, c.Count, c.Err)
	}
	ss.Halve()
	count, ok := ss.Count("/hot")
	fmt.Println("after halve /hot:", count, ok)
	_, ok = ss.Count("/cold")
	fmt.Println("after halve /cold tracked:", ok)
	// Output:
	// /hot count=6 err=0
	// /cold count=1 err=0
	// after halve /hot: 3 true
	// after halve /cold tracked: false
}
