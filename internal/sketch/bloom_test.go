package sketch

import (
	"fmt"
	"testing"
)

func TestBloomValidation(t *testing.T) {
	if _, err := NewBloom(0, 0.01); err == nil {
		t.Error("zero items accepted")
	}
	if _, err := NewBloom(100, 0); err == nil {
		t.Error("zero fp rate accepted")
	}
	if _, err := NewBloom(100, 1); err == nil {
		t.Error("fp rate 1 accepted")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b, err := NewBloom(10_000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		b.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 10_000; i++ {
		if !b.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	if b.Added() != 10_000 {
		t.Errorf("Added = %d", b.Added())
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b, err := NewBloom(50_000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		b.Add(fmt.Sprintf("member-%d", i))
	}
	fps := 0
	const probes = 50_000
	for i := 0; i < probes; i++ {
		if b.Contains(fmt.Sprintf("absent-%d", i)) {
			fps++
		}
	}
	rate := float64(fps) / probes
	if rate > 0.03 {
		t.Errorf("false-positive rate %v, want ≤ ~0.01 (3x slack)", rate)
	}
}

func TestBloomAddIfNew(t *testing.T) {
	b, err := NewBloom(1000, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !b.AddIfNew("x") {
		t.Error("first AddIfNew returned false")
	}
	if b.AddIfNew("x") {
		t.Error("second AddIfNew returned true")
	}
}

func TestSpaceSavingValidation(t *testing.T) {
	if _, err := NewSpaceSaving(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestSpaceSavingExactBelowCapacity(t *testing.T) {
	s, err := NewSpaceSaving(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			s.Add(fmt.Sprintf("k%d", i))
		}
	}
	top := s.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top returned %d", len(top))
	}
	if top[0].Key != "k9" || top[0].Count != 10 || top[0].Err != 0 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Key != "k8" || top[2].Key != "k7" {
		t.Errorf("ordering: %+v", top)
	}
}

func TestSpaceSavingHeavyHittersSurvivePressure(t *testing.T) {
	s, err := NewSpaceSaving(50)
	if err != nil {
		t.Fatal(err)
	}
	// Two heavy items among a stream of 20k singletons.
	for i := 0; i < 20_000; i++ {
		s.Add(fmt.Sprintf("noise-%d", i))
		if i%2 == 0 {
			s.Add("heavy-A")
		}
		if i%4 == 0 {
			s.Add("heavy-B")
		}
	}
	if s.Len() != 50 {
		t.Errorf("Len = %d, want 50", s.Len())
	}
	top := s.Top(2)
	if top[0].Key != "heavy-A" || top[1].Key != "heavy-B" {
		t.Fatalf("heavy hitters lost: %+v", top)
	}
	// Space-Saving guarantees count ≥ true frequency.
	if top[0].Count < 10_000 {
		t.Errorf("heavy-A count %d below true 10000", top[0].Count)
	}
	if top[0].Count-top[0].Err > 10_000 {
		t.Errorf("heavy-A lower bound %d exceeds truth", top[0].Count-top[0].Err)
	}
}

func TestSpaceSavingTopBound(t *testing.T) {
	s, err := NewSpaceSaving(10)
	if err != nil {
		t.Fatal(err)
	}
	s.Add("only")
	if got := s.Top(5); len(got) != 1 {
		t.Errorf("Top(5) over 1 item returned %d", len(got))
	}
}

// TestSpaceSavingHalveDeterministic pins that Halve perturbs the heap in
// a reproducible order. Among entries tied at the minimum count, Add's
// replacement step picks a victim determined by the heap's internal
// layout; if Halve updated the heap in (randomized) map-iteration order,
// two identically-driven tables would evict different victims — which
// made TinyLFU admission decisions differ between identical runs.
func TestSpaceSavingHalveDeterministic(t *testing.T) {
	evictedAfterHalve := func() string {
		s, err := NewSpaceSaving(128)
		if err != nil {
			t.Fatal(err)
		}
		// Fill to capacity with all counts tied at 2, halve to all-1.
		for i := 0; i < 128; i++ {
			key := fmt.Sprintf("k%03d", i)
			s.Add(key)
			s.Add(key)
		}
		s.Halve()
		// The replacement victim is whichever tied-minimum entry the
		// heap surfaces; find it by seeing which old key vanished.
		s.Add("stranger")
		for i := 0; i < 128; i++ {
			key := fmt.Sprintf("k%03d", i)
			if _, ok := s.Count(key); !ok {
				return key
			}
		}
		t.Fatal("no entry was evicted by the replacement step")
		return ""
	}
	first := evictedAfterHalve()
	for round := 1; round < 20; round++ {
		if got := evictedAfterHalve(); got != first {
			t.Fatalf("round %d evicted %q, round 0 evicted %q — Halve is order-sensitive", round, got, first)
		}
	}
}
