package synth

import (
	"math"
	"testing"

	"webcachesim/internal/analyze"
	"webcachesim/internal/doctype"
	"webcachesim/internal/trace"
)

// TestFitProfileRoundTrip: generate → characterize → fit → regenerate →
// characterize, and compare the workload statistics that drive the study.
func TestFitProfileRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("round trip is slow")
	}
	orig := DFNProfile()
	reqs, err := Generate(orig, Options{Seed: 31, Requests: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := analyze.Characterize(trace.NewSliceReader(reqs), "gen1")
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := FitProfile(c1, "fitted")
	if err != nil {
		t.Fatal(err)
	}
	reqs2, err := Generate(fitted, Options{Seed: 32, Requests: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := analyze.Characterize(trace.NewSliceReader(reqs2), "gen2")
	if err != nil {
		t.Fatal(err)
	}

	for _, cl := range []doctype.Class{doctype.Image, doctype.HTML, doctype.Application} {
		if d := math.Abs(c1.PctRequests(cl) - c2.PctRequests(cl)); d > 3 {
			t.Errorf("%v: request share drifted by %v points", cl, d)
		}
		s1, s2 := c1.Classes[cl], c2.Classes[cl]
		if s1.MedianDocKB > 0 {
			rel := math.Abs(s1.MedianDocKB-s2.MedianDocKB) / s1.MedianDocKB
			if rel > 0.3 {
				t.Errorf("%v: median size drifted %v (%.2f vs %.2f KB)", cl, rel, s1.MedianDocKB, s2.MedianDocKB)
			}
		}
		if s1.AlphaOK && s2.AlphaOK && math.Abs(s1.Alpha-s2.Alpha) > 0.2 {
			t.Errorf("%v: alpha drifted (%.2f vs %.2f)", cl, s1.Alpha, s2.Alpha)
		}
	}
	// Temporal ordering must survive: HTML more correlated than images.
	i2, h2 := c2.Classes[doctype.Image], c2.Classes[doctype.HTML]
	if i2.BetaOK && h2.BetaOK && h2.Beta < i2.Beta-0.15 {
		t.Errorf("fitted workload lost the beta ordering: html %v vs images %v", h2.Beta, i2.Beta)
	}
}

func TestFitProfileErrors(t *testing.T) {
	if _, err := FitProfile(&analyze.Characterization{}, "x"); err == nil {
		t.Error("empty characterization accepted")
	}
	c := &analyze.Characterization{Requests: 10, DistinctDocs: 5}
	if _, err := FitProfile(c, "x"); err == nil {
		t.Error("characterization without class traffic accepted")
	}
}

func TestFitProfileDefaultsForUnmeasured(t *testing.T) {
	c := &analyze.Characterization{Requests: 1000, DistinctDocs: 400}
	cs := &c.Classes[doctype.Image]
	cs.Class = doctype.Image
	cs.Requests = 1000
	cs.DistinctDocs = 400
	cs.MeanDocKB = 5
	cs.MedianDocKB = 2
	// No AlphaOK/BetaOK: the fit must fall back, not fail.
	p, err := FitProfile(c, "partial")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Classes) != 1 {
		t.Fatalf("classes = %d, want 1", len(p.Classes))
	}
	cp := p.Classes[0]
	if cp.Alpha <= 0 || cp.Beta <= 0 || cp.CorrProb <= 0 {
		t.Errorf("fallback parameters invalid: %+v", cp)
	}
	if cp.RequestShare != 1 || cp.DistinctShare != 1 {
		t.Errorf("shares not renormalized: %+v", cp)
	}
	// The fitted profile must generate.
	if _, err := Generate(p, Options{Seed: 1, Requests: 100}); err != nil {
		t.Errorf("fitted profile does not generate: %v", err)
	}
}
