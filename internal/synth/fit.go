package synth

import (
	"fmt"

	"webcachesim/internal/analyze"
	"webcachesim/internal/doctype"
)

// FitProfile builds a generation profile from a measured workload
// characterization, so a user can synthesize arbitrarily long (or
// anonymized) traces statistically matched to their own logs:
//
//	c, _ := analyze.Characterize(reader, "mine")
//	p, _ := synth.FitProfile(c, "mine")
//	reqs, _ := synth.Generate(p, synth.Options{Scale: 10})
//
// Per class, the fit copies the distinct/request shares and the
// document-size mean/median, takes α directly from the measured
// popularity slope, and maps the measured temporal-correlation index β to
// the generator's (Beta, CorrProb) pair: Beta is the measured exponent,
// and CorrProb grows with β (stronger measured correlation ⇒ more
// scheduled re-references), saturating at 0.6. Classes whose α or β was
// not measurable fall back to neutral defaults (α 0.65, β 0.75).
func FitProfile(c *analyze.Characterization, name string) (*Profile, error) {
	if c.Requests == 0 {
		return nil, fmt.Errorf("synth: cannot fit a profile to an empty characterization")
	}
	p := &Profile{
		Name:                   name,
		Requests:               int(c.Requests),
		DocsPerRequest:         clampF(float64(c.DistinctDocs)/float64(c.Requests), 0.05, 1),
		MeanInterArrivalMillis: fitInterArrival(c),
	}
	var ext = map[doctype.Class]struct{ ext, ct string }{
		doctype.Image:       {"gif", "image/gif"},
		doctype.HTML:        {"html", "text/html"},
		doctype.MultiMedia:  {"mp3", "audio/mpeg"},
		doctype.Application: {"pdf", "application/pdf"},
		doctype.Other:       {"", ""},
	}
	for _, cl := range doctype.Classes {
		cs := c.Classes[cl]
		if cs.Requests == 0 {
			continue
		}
		alpha := 0.65
		if cs.AlphaOK {
			alpha = clampF(cs.Alpha, 0.2, 1.2)
		}
		beta := 0.75
		if cs.BetaOK {
			beta = clampF(cs.Beta, 0.3, 1.3)
		}
		median := cs.MedianDocKB
		if median <= 0 {
			median = 1
		}
		mean := cs.MeanDocKB
		if mean < median {
			mean = median
		}
		interrupt := 0.0
		if cs.MeanDocKB > 0 && cs.MeanTransferKB < cs.MeanDocKB {
			// Attribute the transfer-vs-document mean gap to interrupted
			// transfers delivering ~37% of the document on average.
			interrupt = clampF((1-cs.MeanTransferKB/cs.MeanDocKB)/0.63, 0, 0.5)
		}
		p.Classes = append(p.Classes, ClassProfile{
			Class:         cl,
			DistinctShare: float64(cs.DistinctDocs) / float64(c.DistinctDocs),
			RequestShare:  float64(cs.Requests) / float64(c.Requests),
			MeanSizeKB:    mean,
			MedianSizeKB:  median,
			Alpha:         alpha,
			Beta:          beta,
			CorrProb:      clampF((beta-0.4)*0.6, 0.05, 0.6),
			InterruptProb: interrupt,
			ModifyProb:    0.005,
			Ext:           ext[cl].ext,
			ContentType:   ext[cl].ct,
		})
	}
	// Shares can drift from 1 through unmeasured classes; renormalize.
	var reqSum, docSum float64
	for _, cp := range p.Classes {
		reqSum += cp.RequestShare
		docSum += cp.DistinctShare
	}
	if reqSum == 0 || docSum == 0 {
		return nil, fmt.Errorf("synth: characterization has no classifiable traffic")
	}
	for i := range p.Classes {
		p.Classes[i].RequestShare /= reqSum
		p.Classes[i].DistinctShare /= docSum
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synth: fitted profile invalid: %w", err)
	}
	return p, nil
}

// fitInterArrival recovers the mean request spacing from the trace period.
func fitInterArrival(c *analyze.Characterization) float64 {
	span := c.EndMillis - c.StartMillis
	if span <= 0 || c.Requests <= 1 {
		return 250
	}
	return float64(span) / float64(c.Requests-1)
}

func clampF(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}
