package synth

import (
	"io"
	"reflect"
	"testing"
)

// TestReaderMatchesGenerate pins the trace.Reader adapter: pulling the
// generator through Reader() yields the identical stream Generate
// materializes, ending in a clean io.EOF.
func TestReaderMatchesGenerate(t *testing.T) {
	opts := Options{Seed: 5, Requests: 500}
	want, err := Generate(DFNProfile(), opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(DFNProfile(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r := g.Reader()
	for i, w := range want {
		req, err := r.Next()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !reflect.DeepEqual(*req, *w) {
			t.Fatalf("request %d:\n got %+v\nwant %+v", i, *req, *w)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after %d requests: err = %v, want io.EOF", len(want), err)
	}
}
