package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// (rank+1)^-alpha. Rank 0 is the most popular item. Sampling is by binary
// search over the precomputed cumulative weights, O(log n) per draw and
// deterministic given the caller's rand source.
type Zipf struct {
	cum   []float64
	total float64
}

// NewZipf precomputes a sampler over n ranks with exponent alpha > 0.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("synth: zipf size %d must be positive", n)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("synth: zipf alpha %v must be positive", alpha)
	}
	cum := make([]float64, n)
	var total float64
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -alpha)
		cum[r] = total
	}
	return &Zipf{cum: cum, total: total}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws a rank using rng.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64() * z.total
	return sort.SearchFloat64s(z.cum, u)
}

// SampleStackDistance draws an integer distance in [1, maxD] with density
// proportional to d^-beta, by inverse transform on the continuous
// truncated power law. It is the temporal-correlation engine: referencing
// the document at LRU-stack depth d with this distribution makes
// inter-reference distances follow P(n) ∝ n^-beta.
func SampleStackDistance(rng *rand.Rand, beta float64, maxD int) int {
	if maxD <= 1 {
		return 1
	}
	u := rng.Float64()
	m := float64(maxD)
	var x float64
	if math.Abs(1-beta) < 1e-9 {
		// β = 1: F(d) = ln d / ln m.
		x = math.Pow(m, u)
	} else {
		oneMinus := 1 - beta
		x = math.Pow(u*(math.Pow(m, oneMinus)-1)+1, 1/oneMinus)
	}
	d := int(x)
	if d < 1 {
		d = 1
	}
	if d > maxD {
		d = maxD
	}
	return d
}

// LogNormal samples document sizes (in bytes) from a lognormal fitted to a
// target median and mean: median = e^μ and mean = e^(μ+σ²/2), so
// σ² = 2·ln(mean/median).
type LogNormal struct {
	mu    float64
	sigma float64
}

// NewLogNormal fits a sampler to the given median and mean in KB; mean
// must be at least the median (σ² ≥ 0).
func NewLogNormal(medianKB, meanKB float64) (*LogNormal, error) {
	if medianKB <= 0 {
		return nil, fmt.Errorf("synth: lognormal median %v must be positive", medianKB)
	}
	if meanKB < medianKB {
		return nil, fmt.Errorf("synth: lognormal mean %v below median %v", meanKB, medianKB)
	}
	return &LogNormal{
		mu:    math.Log(medianKB * 1024),
		sigma: math.Sqrt(2 * math.Log(meanKB/medianKB)),
	}, nil
}

// Sample draws a size in bytes, floored at 64 bytes.
func (l *LogNormal) Sample(rng *rand.Rand) int64 {
	s := int64(math.Exp(l.mu + l.sigma*rng.NormFloat64()))
	if s < 64 {
		s = 64
	}
	return s
}

// CoV returns the distribution's coefficient of variation,
// sqrt(e^σ² − 1), reported alongside the paper's Tables 4/5 values.
func (l *LogNormal) CoV() float64 {
	return math.Sqrt(math.Exp(l.sigma*l.sigma) - 1)
}
