// Package synth generates synthetic proxy traces calibrated to the
// workload characteristics the paper publishes for its two traces
// (Tables 1–5): per-class shares of distinct documents and requests,
// document-size distributions, the Zipf popularity index α, and the
// temporal-correlation index β, plus the document-modification and
// interrupted-transfer behaviour the simulator's 5% rule depends on.
//
// The original DFN (July 2001) and NLANR RTP (February 2001) traces are
// not obtainable; DESIGN.md documents why generation from the published
// statistics preserves the behaviour the paper attributes to them. Values
// the OCR of the paper lost are reconstructed from the surviving prose and
// the companion literature, as recorded on each profile.
package synth

import (
	"fmt"
	"strings"

	"webcachesim/internal/doctype"
)

// ClassProfile calibrates one document class of a workload.
type ClassProfile struct {
	// Class is the document class being described.
	Class doctype.Class
	// DistinctShare is the class's share of distinct documents
	// (Tables 2/3, "% of Distinct Documents"); shares sum to 1.
	DistinctShare float64
	// RequestShare is the class's share of requests (Tables 2/3, "% of
	// Total Requests"); shares sum to 1.
	RequestShare float64
	// MeanSizeKB and MedianSizeKB calibrate the lognormal document-size
	// distribution (Tables 4/5). The coefficient of variation follows from
	// the lognormal fit; EXPERIMENTS.md reports the achieved value.
	MeanSizeKB   float64
	MedianSizeKB float64
	// Alpha is the popularity index: request counts fall with popularity
	// rank ρ as ρ^-Alpha (Tables 4/5, "Slope of Popularity Distribution").
	Alpha float64
	// Beta is the temporal-correlation index driving the stack-distance
	// draws (Tables 4/5, "Degree of Temporal Correlations").
	Beta float64
	// CorrProb is the probability that a request is drawn from the
	// class's LRU stack (temporal correlation) rather than by popularity.
	CorrProb float64
	// InterruptProb is the probability that a transfer is interrupted,
	// delivering only part of the document (more likely for large
	// documents, per Section 4.1).
	InterruptProb float64
	// ModifyProb is the probability that a request observes a modified
	// document (size changed by less than 5%).
	ModifyProb float64
	// Ext is the URL file extension documents of this class carry.
	Ext string
	// ContentType is the MIME type recorded for responses of this class.
	ContentType string
}

// Profile calibrates a whole workload.
type Profile struct {
	// Name labels the profile ("DFN", "RTP").
	Name string
	// Requests is the request count at scale 1.0.
	Requests int
	// DocsPerRequest is the ratio of distinct documents to requests
	// (Table 1: DFN 2,987,565/6,718,201 ≈ 0.44; RTP 2,227,339/4,144,900 ≈
	// 0.54) and sizes the per-class document populations.
	DocsPerRequest float64
	// Classes lists the per-class calibrations; shares must sum to ≈ 1.
	Classes []ClassProfile
	// MeanInterArrivalMillis spaces request timestamps (exponential
	// inter-arrivals).
	MeanInterArrivalMillis float64
	// DiurnalAmplitude in [0, 1) modulates the request rate over the day
	// with a sinusoid peaking mid-afternoon, as proxy logs show: the
	// instantaneous rate is base·(1 + A·sin(…)). 0 disables the cycle.
	DiurnalAmplitude float64
}

// Validate checks that the profile is internally consistent.
func (p *Profile) Validate() error {
	if p.Requests <= 0 {
		return fmt.Errorf("synth: profile %s: requests %d must be positive", p.Name, p.Requests)
	}
	if p.DocsPerRequest <= 0 || p.DocsPerRequest > 1 {
		return fmt.Errorf("synth: profile %s: docs-per-request %v out of (0,1]", p.Name, p.DocsPerRequest)
	}
	if len(p.Classes) == 0 {
		return fmt.Errorf("synth: profile %s: no classes", p.Name)
	}
	if p.DiurnalAmplitude < 0 || p.DiurnalAmplitude >= 1 {
		return fmt.Errorf("synth: profile %s: diurnal amplitude %v out of [0,1)", p.Name, p.DiurnalAmplitude)
	}
	var reqShare, docShare float64
	for _, c := range p.Classes {
		if c.Class == doctype.Unknown {
			return fmt.Errorf("synth: profile %s: class unset", p.Name)
		}
		if c.RequestShare < 0 || c.DistinctShare < 0 {
			return fmt.Errorf("synth: profile %s: negative share in %v", p.Name, c.Class)
		}
		if c.MeanSizeKB < c.MedianSizeKB {
			return fmt.Errorf("synth: profile %s: %v mean size below median (lognormal needs mean ≥ median)", p.Name, c.Class)
		}
		if c.MedianSizeKB <= 0 {
			return fmt.Errorf("synth: profile %s: %v median size must be positive", p.Name, c.Class)
		}
		if c.Alpha <= 0 || c.Beta <= 0 {
			return fmt.Errorf("synth: profile %s: %v alpha/beta must be positive", p.Name, c.Class)
		}
		if c.CorrProb < 0 || c.CorrProb >= 1 {
			return fmt.Errorf("synth: profile %s: %v corr probability out of [0,1)", p.Name, c.Class)
		}
		reqShare += c.RequestShare
		docShare += c.DistinctShare
	}
	if reqShare < 0.99 || reqShare > 1.01 {
		return fmt.Errorf("synth: profile %s: request shares sum to %v, want 1", p.Name, reqShare)
	}
	if docShare < 0.99 || docShare > 1.01 {
		return fmt.Errorf("synth: profile %s: distinct shares sum to %v, want 1", p.Name, docShare)
	}
	return nil
}

// DFNProfile reconstructs the DFN trace (German research network, July
// 2001; Tables 1, 2, 4). Reconstruction notes:
//
//   - Request/distinct-document shares follow Table 2's prose: HTML+images
//     ≈ 95% of documents and requests, multi media 0.23% of distinct
//     documents and 0.14% of requests, HTML 21.2% of requests, image
//     requested-data 30.8%, application requested-data 34.8%.
//   - Size means/medians are set so the emergent requested-data shares
//     match those percentages; magnitudes follow Arlitt et al. [1].
//   - α is largest for images and smallest for multi media/application;
//     β shows the inverse trend (paper §2), magnitudes per Jin &
//     Bestavros [8].
func DFNProfile() *Profile {
	return &Profile{
		Name:                   "DFN",
		Requests:               500_000,
		DocsPerRequest:         0.44,
		MeanInterArrivalMillis: 350,
		Classes: []ClassProfile{
			{
				Class: doctype.Image, DistinctShare: 0.70, RequestShare: 0.735,
				MeanSizeKB: 4.5, MedianSizeKB: 2.2,
				Alpha: 0.83, Beta: 0.65, CorrProb: 0.15,
				InterruptProb: 0.01, ModifyProb: 0.002,
				Ext: "gif", ContentType: "image/gif",
			},
			{
				Class: doctype.HTML, DistinctShare: 0.25, RequestShare: 0.212,
				MeanSizeKB: 9, MedianSizeKB: 3.8,
				Alpha: 0.72, Beta: 0.80, CorrProb: 0.25,
				InterruptProb: 0.01, ModifyProb: 0.02,
				Ext: "html", ContentType: "text/html",
			},
			{
				Class: doctype.MultiMedia, DistinctShare: 0.0023, RequestShare: 0.0014,
				MeanSizeKB: 1000, MedianSizeKB: 380,
				Alpha: 0.60, Beta: 1.15, CorrProb: 0.60,
				InterruptProb: 0.25, ModifyProb: 0.001,
				Ext: "mp3", ContentType: "audio/mpeg",
			},
			{
				Class: doctype.Application, DistinctShare: 0.035, RequestShare: 0.035,
				MeanSizeKB: 115, MedianSizeKB: 12,
				Alpha: 0.62, Beta: 0.90, CorrProb: 0.40,
				InterruptProb: 0.12, ModifyProb: 0.002,
				Ext: "pdf", ContentType: "application/pdf",
			},
			{
				Class: doctype.Other, DistinctShare: 0.0127, RequestShare: 0.0166,
				MeanSizeKB: 20, MedianSizeKB: 4,
				Alpha: 0.70, Beta: 0.75, CorrProb: 0.20,
				InterruptProb: 0.03, ModifyProb: 0.005,
				Ext: "", ContentType: "",
			},
		},
	}
}

// RTPProfile reconstructs the NLANR RTP trace (Research Triangle Park,
// February 2001; Tables 1, 3, 5). Relative to DFN — following §4.4 — it
// has more distinct multi-media documents (0.41% vs 0.23%) and requests to
// them (0.33% vs 0.14%), a far larger HTML request share (44.2% vs 21.2%),
// smaller image and application requested-data shares (19.7% and 21.9%),
// flatter popularity (smaller α, "many equally popular documents"), and
// stronger per-class temporal correlation for HTML, multi media, and
// application documents.
func RTPProfile() *Profile {
	return &Profile{
		Name:                   "RTP",
		Requests:               400_000,
		DocsPerRequest:         0.54,
		MeanInterArrivalMillis: 550,
		Classes: []ClassProfile{
			{
				Class: doctype.Image, DistinctShare: 0.645, RequestShare: 0.505,
				MeanSizeKB: 5.5, MedianSizeKB: 2.6,
				Alpha: 0.70, Beta: 0.60, CorrProb: 0.12,
				InterruptProb: 0.01, ModifyProb: 0.002,
				Ext: "gif", ContentType: "image/gif",
			},
			{
				Class: doctype.HTML, DistinctShare: 0.30, RequestShare: 0.442,
				MeanSizeKB: 9, MedianSizeKB: 3.0,
				Alpha: 0.50, Beta: 0.95, CorrProb: 0.45,
				InterruptProb: 0.01, ModifyProb: 0.02,
				Ext: "html", ContentType: "text/html",
			},
			{
				Class: doctype.MultiMedia, DistinctShare: 0.0041, RequestShare: 0.0033,
				MeanSizeKB: 1000, MedianSizeKB: 380,
				Alpha: 0.50, Beta: 1.05, CorrProb: 0.55,
				InterruptProb: 0.25, ModifyProb: 0.001,
				Ext: "mp3", ContentType: "audio/mpeg",
			},
			{
				Class: doctype.Application, DistinctShare: 0.034, RequestShare: 0.033,
				MeanSizeKB: 95, MedianSizeKB: 10,
				Alpha: 0.45, Beta: 1.0, CorrProb: 0.35,
				InterruptProb: 0.12, ModifyProb: 0.002,
				Ext: "pdf", ContentType: "application/pdf",
			},
			{
				Class: doctype.Other, DistinctShare: 0.0169, RequestShare: 0.0167,
				MeanSizeKB: 20, MedianSizeKB: 4,
				Alpha: 0.60, Beta: 0.80, CorrProb: 0.25,
				InterruptProb: 0.03, ModifyProb: 0.005,
				Ext: "", ContentType: "",
			},
		},
	}
}

// ProfileByName resolves a built-in profile ("dfn" or "rtp",
// case-insensitive).
func ProfileByName(name string) (*Profile, error) {
	switch {
	case strings.EqualFold(name, "dfn"):
		return DFNProfile(), nil
	case strings.EqualFold(name, "rtp"), strings.EqualFold(name, "nlanr"):
		return RTPProfile(), nil
	default:
		return nil, fmt.Errorf("synth: unknown profile %q (want dfn or rtp)", name)
	}
}
