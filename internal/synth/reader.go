package synth

import (
	"io"

	"webcachesim/internal/trace"
)

// Reader adapts the generator to the trace.Reader interface, so a
// synthetic trace can feed core.BuildWorkload (or any other trace
// consumer) directly — interned at ingest, with no intermediate
// []*trace.Request materialized.
func (g *Generator) Reader() trace.Reader { return generatorReader{g} }

type generatorReader struct{ g *Generator }

// Next implements trace.Reader; the end of the configured request count is
// a clean io.EOF.
func (r generatorReader) Next() (*trace.Request, error) {
	if req := r.g.Next(); req != nil {
		return req, nil
	}
	return nil, io.EOF
}
