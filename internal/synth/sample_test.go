package synth

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("alpha 0 accepted")
	}
	z, err := NewZipf(100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 100 {
		t.Errorf("N = %d, want 100", z.N())
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipf(1000, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	const draws = 200_000
	for i := 0; i < draws; i++ {
		r := z.Sample(rng)
		if r < 0 || r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 should dominate rank 99 by roughly 100^0.8 ≈ 40×.
	ratio := float64(counts[0]) / float64(counts[99]+1)
	if ratio < 15 || ratio > 120 {
		t.Errorf("rank-0/rank-99 ratio %v, want near 40", ratio)
	}
	// All the mass must be reachable: the least popular half still gets
	// some draws at this volume.
	var tail int
	for _, c := range counts[500:] {
		tail += c
	}
	if tail == 0 {
		t.Error("tail ranks never sampled")
	}
}

func TestZipfAlphaRecoverable(t *testing.T) {
	// The sampled frequencies should regress back to the configured
	// exponent (this is exactly how analyze measures α).
	rng := rand.New(rand.NewSource(2))
	for _, alpha := range []float64{0.6, 0.9} {
		z, err := NewZipf(2000, alpha)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, 2000)
		for i := 0; i < 400_000; i++ {
			counts[z.Sample(rng)]++
		}
		got, err := fitAlpha(counts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-alpha) > 0.12 {
			t.Errorf("alpha=%v: recovered %v", alpha, got)
		}
	}
}

// fitAlpha mirrors stats.PopularityIndex without the import cycle risk;
// kept local to the test.
func fitAlpha(counts []int64) (float64, error) {
	// Simple log-log fit over geometric rank bins.
	sorted := append([]int64(nil), counts...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var sx, sy, sxx, sxy float64
	var n float64
	for lo := 1; lo <= len(sorted); lo *= 2 {
		hi := lo * 2
		if hi > len(sorted)+1 {
			hi = len(sorted) + 1
		}
		var sum float64
		for r := lo; r < hi; r++ {
			sum += float64(sorted[r-1])
		}
		mean := sum / float64(hi-lo)
		if mean <= 0 {
			continue
		}
		x := math.Log(math.Sqrt(float64(lo) * float64(hi-1)))
		y := math.Log(mean)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	return -slope, nil
}

func TestSampleStackDistanceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, beta := range []float64{0.5, 1.0, 1.3} {
		for _, maxD := range []int{1, 2, 100, 4096} {
			for i := 0; i < 2000; i++ {
				d := SampleStackDistance(rng, beta, maxD)
				if d < 1 || d > maxD {
					t.Fatalf("beta=%v maxD=%d: distance %d out of bounds", beta, maxD, d)
				}
			}
		}
	}
}

func TestSampleStackDistanceSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	count := func(beta float64) (small, large int) {
		for i := 0; i < 100_000; i++ {
			d := SampleStackDistance(rng, beta, 1024)
			if d <= 4 {
				small++
			}
			if d > 256 {
				large++
			}
		}
		return small, large
	}
	sSteep, lSteep := count(1.2)
	sFlat, lFlat := count(0.4)
	if sSteep <= sFlat {
		t.Errorf("steeper beta should prefer short distances: %d <= %d", sSteep, sFlat)
	}
	if lSteep >= lFlat {
		t.Errorf("steeper beta should avoid long distances: %d >= %d", lSteep, lFlat)
	}
}

func TestLogNormalCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l, err := NewLogNormal(10, 50) // median 10 KB, mean 50 KB
	if err != nil {
		t.Fatal(err)
	}
	n := 200_000
	var sum float64
	samples := make([]float64, n)
	for i := range samples {
		s := float64(l.Sample(rng))
		samples[i] = s
		sum += s
	}
	mean := sum / float64(n) / 1024
	if math.Abs(mean-50)/50 > 0.15 {
		t.Errorf("sample mean %v KB, want ≈50", mean)
	}
	// Median: count below 10 KB should be ≈ half.
	below := 0
	for _, s := range samples {
		if s < 10*1024 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction below median %v, want ≈0.5", frac)
	}
	if l.CoV() <= 0 {
		t.Error("CoV must be positive for mean > median")
	}
}

func TestLogNormalValidation(t *testing.T) {
	if _, err := NewLogNormal(0, 10); err == nil {
		t.Error("zero median accepted")
	}
	if _, err := NewLogNormal(10, 5); err == nil {
		t.Error("mean < median accepted")
	}
}

func TestLogNormalFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l, err := NewLogNormal(0.01, 0.02) // ≈10-byte median
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if s := l.Sample(rng); s < 64 {
			t.Fatalf("sample %d below 64-byte floor", s)
		}
	}
}
