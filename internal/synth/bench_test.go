package synth

import (
	"math/rand"
	"testing"
)

// BenchmarkGenerate measures trace-synthesis throughput (requests/op are
// 1 each; ns/op is the per-request generation cost).
func BenchmarkGenerate(b *testing.B) {
	newGen := func() *Generator {
		g, err := NewGenerator(DFNProfile(), Options{Seed: 1, Requests: 1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	g := newGen()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Next() == nil {
			g = newGen()
		}
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z, err := NewZipf(1_000_000, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += z.Sample(rng)
	}
	_ = sink
}

func BenchmarkStackDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var sink int
	for i := 0; i < b.N; i++ {
		sink += SampleStackDistance(rng, 0.8, 65536)
	}
	_ = sink
}

func BenchmarkLogNormalSample(b *testing.B) {
	l, err := NewLogNormal(10, 50)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += l.Sample(rng)
	}
	_ = sink
}
