package synth

import (
	"math"
	"strings"
	"testing"

	"webcachesim/internal/doctype"
	"webcachesim/internal/trace"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range []*Profile{DFNProfile(), RTPProfile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"dfn", "DFN", "rtp", "NLANR"} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Error("bogus profile accepted")
	}
}

func TestProfileValidationCatchesErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Profile)
	}{
		{"zero requests", func(p *Profile) { p.Requests = 0 }},
		{"bad docs per request", func(p *Profile) { p.DocsPerRequest = 0 }},
		{"no classes", func(p *Profile) { p.Classes = nil }},
		{"share sum", func(p *Profile) { p.Classes[0].RequestShare += 0.5 }},
		{"distinct sum", func(p *Profile) { p.Classes[0].DistinctShare += 0.5 }},
		{"mean below median", func(p *Profile) { p.Classes[0].MeanSizeKB = 0.1 }},
		{"zero median", func(p *Profile) { p.Classes[0].MedianSizeKB = 0 }},
		{"zero alpha", func(p *Profile) { p.Classes[0].Alpha = 0 }},
		{"zero beta", func(p *Profile) { p.Classes[0].Beta = 0 }},
		{"corr prob 1", func(p *Profile) { p.Classes[0].CorrProb = 1 }},
		{"unset class", func(p *Profile) { p.Classes[0].Class = doctype.Unknown }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			p := DFNProfile()
			tt.mut(p)
			if err := p.Validate(); err == nil {
				t.Errorf("mutation %q not caught", tt.name)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := Options{Seed: 7, Requests: 2000}
	a, err := Generate(DFNProfile(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DFNProfile(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2000 || len(b) != 2000 {
		t.Fatalf("lengths %d, %d; want 2000", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("request %d differs between same-seed runs", i)
		}
	}
	c, err := Generate(DFNProfile(), Options{Seed: 8, Requests: 2000})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].URL == c[i].URL {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateRequestShapes(t *testing.T) {
	reqs, err := Generate(DFNProfile(), Options{Seed: 1, Requests: 5000})
	if err != nil {
		t.Fatal(err)
	}
	var lastTime int64
	for i, r := range reqs {
		if r.Status != 200 || r.Method != "GET" {
			t.Fatalf("request %d: status/method %d %q", i, r.Status, r.Method)
		}
		if r.UnixMillis <= lastTime {
			t.Fatalf("request %d: timestamps not strictly increasing", i)
		}
		lastTime = r.UnixMillis
		if r.DocSize < 64 {
			t.Fatalf("request %d: doc size %d below floor", i, r.DocSize)
		}
		if r.TransferSize < 1 || r.TransferSize > r.DocSize {
			t.Fatalf("request %d: transfer %d outside (0, %d]", i, r.TransferSize, r.DocSize)
		}
		if !strings.HasPrefix(r.URL, "http://DFN.synth.example/") {
			t.Fatalf("request %d: URL %q", i, r.URL)
		}
		if !trace.Cacheable(r) {
			t.Fatalf("request %d: generated request not cacheable", i)
		}
		if got := doctype.Classify(r.ContentType, r.URL); got != r.Class {
			t.Fatalf("request %d: recorded class %v but Classify says %v (%q, %q)",
				i, r.Class, got, r.ContentType, r.URL)
		}
	}
}

func TestGenerateClassMix(t *testing.T) {
	p := DFNProfile()
	reqs, err := Generate(p, Options{Seed: 2, Requests: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[doctype.Class]int{}
	for _, r := range reqs {
		counts[r.Class]++
	}
	for _, cp := range p.Classes {
		got := float64(counts[cp.Class]) / float64(len(reqs))
		tol := 0.02 + cp.RequestShare*0.15
		if math.Abs(got-cp.RequestShare) > tol {
			t.Errorf("%v request share %v, want %v ± %v", cp.Class, got, cp.RequestShare, tol)
		}
	}
}

func TestGenerateModificationsWithinWindow(t *testing.T) {
	// Track per-URL size changes: every change must be under 5% (a
	// modification) — interruptions affect TransferSize, never DocSize.
	reqs, err := Generate(DFNProfile(), Options{Seed: 3, Requests: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]int64{}
	changes := 0
	for _, r := range reqs {
		if prev, ok := last[r.URL]; ok && prev != r.DocSize {
			changes++
			delta := math.Abs(float64(r.DocSize-prev)) / float64(prev)
			if delta >= 0.05 {
				t.Fatalf("doc %s size changed by %v (≥5%%)", r.URL, delta)
			}
		}
		last[r.URL] = r.DocSize
	}
	if changes == 0 {
		t.Error("no modifications generated")
	}
}

func TestGenerateInterruptions(t *testing.T) {
	reqs, err := Generate(DFNProfile(), Options{Seed: 4, Requests: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	interrupted := 0
	for _, r := range reqs {
		if r.TransferSize < r.DocSize {
			interrupted++
			frac := float64(r.TransferSize) / float64(r.DocSize)
			if frac > 0.95 {
				t.Fatalf("interruption delivered %v of the doc — inside the 5%% modification window", frac)
			}
		}
	}
	if interrupted == 0 {
		t.Error("no interrupted transfers generated")
	}
}

func TestGenerateScaleAndOverride(t *testing.T) {
	p := DFNProfile()
	p.Requests = 1000
	g, err := NewGenerator(p, Options{Seed: 1, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if g.Total() != 500 {
		t.Errorf("scaled total = %d, want 500", g.Total())
	}
	g, err = NewGenerator(p, Options{Seed: 1, Requests: 123})
	if err != nil {
		t.Fatal(err)
	}
	if g.Total() != 123 {
		t.Errorf("override total = %d, want 123", g.Total())
	}
}

func TestGenerateToWriter(t *testing.T) {
	var sb strings.Builder
	w := trace.NewBinaryWriter(&sb)
	p := DFNProfile()
	n, err := GenerateTo(w, p, Options{Seed: 1, Requests: 500})
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("wrote %d, want 500", n)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.ReadAll(trace.NewBinaryReader(strings.NewReader(sb.String())))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 500 {
		t.Errorf("re-read %d records, want 500", len(reqs))
	}
	// The binary format preserves DocSize, so the modification model
	// survives a file round-trip.
	if reqs[0].DocSize == 0 {
		t.Error("DocSize lost in round-trip")
	}
}

func TestGeneratorNilAfterTotal(t *testing.T) {
	g, err := NewGenerator(DFNProfile(), Options{Seed: 1, Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if g.Next() == nil {
			t.Fatalf("Next returned nil at %d of 3", i)
		}
	}
	if g.Next() != nil {
		t.Error("Next after total should return nil")
	}
}

func TestGenerateClients(t *testing.T) {
	reqs, err := Generate(DFNProfile(), Options{Seed: 6, Requests: 20_000, Clients: 500})
	if err != nil {
		t.Fatal(err)
	}
	clients := map[string]int{}
	for _, r := range reqs {
		if !strings.HasPrefix(r.Client, "10.") {
			t.Fatalf("client %q not an address", r.Client)
		}
		clients[r.Client]++
	}
	if len(clients) < 300 || len(clients) > 500 {
		t.Errorf("distinct clients = %d, want most of 500", len(clients))
	}
	// Activity must be skewed: the busiest client far above the mean.
	maxCount := 0
	for _, c := range clients {
		if c > maxCount {
			maxCount = c
		}
	}
	mean := len(reqs) / len(clients)
	if maxCount < 3*mean {
		t.Errorf("busiest client %d requests vs mean %d; want Zipf skew", maxCount, mean)
	}
}

func TestGenerateSingleClientDefault(t *testing.T) {
	reqs, err := Generate(DFNProfile(), Options{Seed: 6, Requests: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.Client != "synth" {
			t.Fatalf("client = %q, want synth", r.Client)
		}
	}
}

func TestGenerateDiurnalCycle(t *testing.T) {
	p := DFNProfile()
	p.DiurnalAmplitude = 0.8
	p.MeanInterArrivalMillis = 2000
	// ~43k requests over ~1 day.
	reqs, err := Generate(p, Options{Seed: 8, Requests: 43_000})
	if err != nil {
		t.Fatal(err)
	}
	const millisPerDay = int64(24 * 60 * 60 * 1000)
	counts := make([]int, 24)
	for _, r := range reqs {
		h := int(r.UnixMillis % millisPerDay / (60 * 60 * 1000))
		counts[h]++
	}
	// Peak window (13:00–17:00) must far outpace the trough (01:00–05:00).
	peak := counts[13] + counts[14] + counts[15] + counts[16]
	trough := counts[1] + counts[2] + counts[3] + counts[4]
	if trough == 0 || float64(peak)/float64(trough) < 2 {
		t.Errorf("peak/trough ratio %d/%d too flat for amplitude 0.8", peak, trough)
	}
	// Timestamps must remain strictly increasing.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].UnixMillis <= reqs[i-1].UnixMillis {
			t.Fatal("timestamps not increasing under diurnal modulation")
		}
	}
}

func TestGenerateDiurnalValidation(t *testing.T) {
	p := DFNProfile()
	p.DiurnalAmplitude = 1.0
	if err := p.Validate(); err == nil {
		t.Error("amplitude 1.0 accepted")
	}
}

func TestGenerateInvalidProfile(t *testing.T) {
	p := DFNProfile()
	p.Requests = -1
	if _, err := Generate(p, Options{}); err == nil {
		t.Error("invalid profile accepted")
	}
}
