package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"webcachesim/internal/container/pqueue"
	"webcachesim/internal/trace"
)

// Options tunes a generation run.
type Options struct {
	// Seed makes the trace reproducible. Zero selects seed 1.
	Seed int64
	// Scale multiplies the profile's request count; 0 selects 1.0.
	Scale float64
	// Requests overrides the request count directly when positive
	// (Scale is then ignored).
	Requests int
	// StartUnixMillis is the timestamp of the first request; 0 selects
	// 2001-07-01 00:00 UTC, matching the DFN collection period.
	StartUnixMillis int64
	// Clients is the size of the client population; requests carry client
	// identifiers drawn from a Zipf distribution over it, and scheduled
	// re-references keep their original client (a client re-reads its own
	// documents). 0 selects a single client.
	Clients int
}

// clientZipfAlpha skews client activity: a few heavy clients, a long
// tail, as proxy logs show.
const clientZipfAlpha = 0.8

// defaultStart is 2001-07-01T00:00:00Z in Unix milliseconds.
const defaultStart = 993_945_600_000

// populationHeadroom oversizes per-class document populations relative to
// the expected distinct-document count so the Zipf tail does not exhaust.
const populationHeadroom = 1.3

// classState holds the mutable generation state of one document class.
type classState struct {
	prof   ClassProfile
	zipf   *Zipf
	sizes  []int64
	names  []string
	logn   *LogNormal
	prefix string
}

// pendingRef is a scheduled re-reference implementing temporal
// correlation: when a request is emitted, a follow-up reference to the
// same document is scheduled with probability CorrProb at a global-stream
// distance drawn from the class's d^-β power law. Measured on the output
// stream, inter-reference distances of equally popular documents then
// follow P(n) ∝ n^-β — the paper's definition of the temporal-correlation
// index — in global requests, independent of how rare the class is.
type pendingRef struct {
	class  int
	doc    int32
	client int32
}

// Generator produces synthetic request streams from a profile. Create one
// with NewGenerator and pull requests with Next, or use Generate for a
// materialized slice.
type Generator struct {
	prof    *Profile
	rng     *rand.Rand
	classes []*classState
	// classCum is the fresh-draw CDF aligned with classes. Fresh-draw
	// weights are RequestShare·(1−CorrProb): each fresh draw spawns a
	// geometric chain of re-references with expected length
	// 1/(1−CorrProb), so the emitted request shares match RequestShare.
	classCum []float64
	// pending holds scheduled re-references keyed by due position.
	pending pqueue.Queue[pendingRef]
	// maxDelay caps re-reference distances so short test traces still see
	// their scheduled correlation.
	maxDelay int
	// clients samples client identifiers (nil for a single client).
	clients     *Zipf
	clientNames []string
	now         int64
	total       int
	emitted     int
}

// NewGenerator validates the profile and prepares a generator emitting
// the configured number of requests.
func NewGenerator(p *Profile, opts Options) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	total := opts.Requests
	if total <= 0 {
		scale := opts.Scale
		if scale <= 0 {
			scale = 1
		}
		total = int(math.Round(scale * float64(p.Requests)))
	}
	if total <= 0 {
		return nil, fmt.Errorf("synth: request count %d must be positive", total)
	}
	start := opts.StartUnixMillis
	if start == 0 {
		start = defaultStart
	}

	maxDelay := total / 4
	if maxDelay > 65536 {
		maxDelay = 65536
	}
	if maxDelay < 64 {
		maxDelay = 64
	}
	g := &Generator{
		prof:     p,
		rng:      rand.New(rand.NewSource(seed)),
		classCum: make([]float64, 0, len(p.Classes)),
		maxDelay: maxDelay,
		now:      start,
		total:    total,
	}
	if opts.Clients > 0 {
		zipf, err := NewZipf(opts.Clients, clientZipfAlpha)
		if err != nil {
			return nil, fmt.Errorf("synth: clients: %w", err)
		}
		g.clients = zipf
		g.clientNames = make([]string, opts.Clients)
	}
	var cum float64
	for _, cp := range p.Classes {
		pop := int(math.Ceil(cp.DistinctShare * p.DocsPerRequest * float64(total) * populationHeadroom))
		if pop < 8 {
			pop = 8
		}
		zipf, err := NewZipf(pop, cp.Alpha)
		if err != nil {
			return nil, fmt.Errorf("synth: class %v: %w", cp.Class, err)
		}
		logn, err := NewLogNormal(cp.MedianSizeKB, cp.MeanSizeKB)
		if err != nil {
			return nil, fmt.Errorf("synth: class %v: %w", cp.Class, err)
		}
		st := &classState{
			prof:   cp,
			zipf:   zipf,
			sizes:  make([]int64, pop),
			names:  make([]string, pop),
			logn:   logn,
			prefix: "http://" + p.Name + ".synth.example/" + cp.Class.Short() + "/d",
		}
		g.classes = append(g.classes, st)
		cum += cp.RequestShare * (1 - cp.CorrProb)
		g.classCum = append(g.classCum, cum)
	}
	return g, nil
}

// Total returns the number of requests the generator will emit.
func (g *Generator) Total() int { return g.total }

// Next emits the next request, or nil when the configured count has been
// produced. The returned request is freshly allocated and owned by the
// caller.
func (g *Generator) Next() *trace.Request {
	if g.emitted >= g.total {
		return nil
	}
	g.emitted++
	g.now += g.interArrival()

	st, doc, client := g.pickTarget()

	size := st.sizes[doc]
	if size == 0 {
		size = st.logn.Sample(g.rng)
		st.sizes[doc] = size
		st.names[doc] = st.name(doc)
	} else if g.rng.Float64() < st.prof.ModifyProb {
		size = modifySize(g.rng, size)
		st.sizes[doc] = size
	}

	transfer := size
	if g.rng.Float64() < st.prof.InterruptProb {
		// Deliver 5–70% of the document: far enough from the full size
		// that the simulator's 5% rule reads it as an interruption.
		frac := 0.05 + 0.65*g.rng.Float64()
		transfer = int64(float64(size) * frac)
		if transfer < 1 {
			transfer = 1
		}
	}

	return &trace.Request{
		UnixMillis:   g.now,
		URL:          st.names[doc],
		Status:       200,
		TransferSize: transfer,
		DocSize:      size,
		ContentType:  st.prof.ContentType,
		Class:        st.prof.Class,
		Client:       g.clientName(client),
		Method:       "GET",
	}
}

// interArrival draws the next request gap. With a diurnal amplitude, the
// exponential mean is scaled by the inverse of the instantaneous rate
// factor 1 + A·sin(2π·(hour−peakShift)/24), which peaks mid-afternoon.
func (g *Generator) interArrival() int64 {
	mean := g.prof.MeanInterArrivalMillis
	if a := g.prof.DiurnalAmplitude; a > 0 {
		const millisPerDay = 24 * 60 * 60 * 1000
		// Shift so the peak lands around 15:00 and the trough around
		// 03:00 local time.
		phase := 2 * math.Pi * (float64(g.now%millisPerDay)/millisPerDay - 0.375)
		mean /= 1 + a*math.Sin(phase)
	}
	return int64(g.rng.ExpFloat64()*mean) + 1
}

// clientName formats a client identifier as a 10.x.y.z address, caching
// the string per client.
func (g *Generator) clientName(client int32) string {
	if g.clients == nil {
		return "synth"
	}
	if s := g.clientNames[client]; s != "" {
		return s
	}
	s := fmt.Sprintf("10.%d.%d.%d", client>>16&255, client>>8&255, client&255)
	g.clientNames[client] = s
	return s
}

// pickTarget chooses the request target: a due scheduled re-reference if
// one exists, otherwise a fresh Zipf popularity draw in a class sampled by
// the corrected fresh-draw shares. Either way, a follow-up re-reference is
// scheduled with the class's correlation probability.
func (g *Generator) pickTarget() (*classState, int32, int32) {
	var (
		ci     int
		doc    int32
		client int32
	)
	if it, err := g.pending.Min(); err == nil && it.Priority() <= float64(g.emitted) {
		popped, _ := g.pending.PopMin()
		ci, doc, client = popped.Value.class, popped.Value.doc, popped.Value.client
	} else {
		u := g.rng.Float64() * g.classCum[len(g.classCum)-1]
		ci = sort.SearchFloat64s(g.classCum, u)
		if ci >= len(g.classes) {
			ci = len(g.classes) - 1
		}
		doc = int32(g.classes[ci].zipf.Sample(g.rng))
		if g.clients != nil {
			client = int32(g.clients.Sample(g.rng))
		}
	}
	st := g.classes[ci]
	if g.rng.Float64() < st.prof.CorrProb {
		d := SampleStackDistance(g.rng, st.prof.Beta, g.maxDelay)
		g.pending.Push(pendingRef{class: ci, doc: doc, client: client}, float64(g.emitted+d))
	}
	return st, doc, client
}

func (st *classState) name(doc int32) string {
	s := st.prefix + strconv.Itoa(int(doc))
	if st.prof.Ext != "" {
		s += "." + st.prof.Ext
	}
	return s
}

// modifySize perturbs a document size by 0.5–4.5% in either direction —
// inside the simulator's 5% modification window.
func modifySize(rng *rand.Rand, size int64) int64 {
	frac := 0.005 + 0.04*rng.Float64()
	if rng.Intn(2) == 0 {
		frac = -frac
	}
	ns := int64(float64(size) * (1 + frac))
	if ns == size {
		ns = size + 1
	}
	if ns < 64 {
		ns = 64
	}
	return ns
}

// Generate materializes a full trace as a request slice.
func Generate(p *Profile, opts Options) ([]*trace.Request, error) {
	g, err := NewGenerator(p, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*trace.Request, 0, g.Total())
	for {
		r := g.Next()
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}

// GenerateTo streams a full trace into a writer and returns the number of
// requests written.
func GenerateTo(w trace.Writer, p *Profile, opts Options) (int64, error) {
	g, err := NewGenerator(p, opts)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		r := g.Next()
		if r == nil {
			return n, nil
		}
		if err := w.Write(r); err != nil {
			return n, fmt.Errorf("synth: write request %d: %w", n, err)
		}
		n++
	}
}
