package synth_test

import (
	"fmt"

	"webcachesim/internal/synth"
)

// ExampleGenerate synthesizes a small DFN-calibrated trace.
func ExampleGenerate() {
	reqs, err := synth.Generate(synth.DFNProfile(), synth.Options{Seed: 1, Requests: 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range reqs {
		fmt.Println(r.Method, r.Status, r.Class)
	}
	// Output:
	// GET 200 HTML
	// GET 200 Images
	// GET 200 Images
}

// ExampleProfileByName resolves the built-in workload profiles.
func ExampleProfileByName() {
	for _, name := range []string{"dfn", "rtp"} {
		p, err := synth.ProfileByName(name)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(p.Name, p.Requests, len(p.Classes))
	}
	// Output:
	// DFN 500000 5
	// RTP 400000 5
}
