module webcachesim

go 1.22
