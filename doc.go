// Package webcachesim reproduces Lindemann & Waldhorst, "Evaluating the
// Impact of Different Document Types on the Performance of Web Cache
// Replacement Schemes" (DSN 2002): a trace-driven study of how LRU,
// LFU-DA, Greedy Dual Size, and Greedy Dual* treat images, HTML,
// multi-media, and application documents under the constant and packet
// retrieval-cost models.
//
// The root package carries the benchmark suite (one benchmark per paper
// table and figure plus ablations — see bench_test.go); the implementation
// lives under internal/ and the executables under cmd/. Start with
// README.md, DESIGN.md (system inventory and trace substitution), and
// EXPERIMENTS.md (paper-vs-measured record).
package webcachesim
